#include "src/runtime/testbed.h"

#include <algorithm>
#include <cstdio>

#include "src/nf/software/crypto_nfs.h"
#include "src/nf/software/factory.h"
#include "src/placer/profile.h"
#include "src/telemetry/json.h"
#include "src/verify/verifier.h"

namespace lemur::runtime {
namespace {

/// Which bucket a ToR drop belongs to: the metacompiler's coordination
/// tables (steering/routing) drop unrouted traffic, everything else is an
/// NF's own verdict (ACL deny, ...).
telemetry::DropCause classify_tor_drop(const std::string& drop_table) {
  if (drop_table.empty()) return telemetry::DropCause::kRoutingMiss;
  if (drop_table == "lemur_steer" ||
      drop_table.find("steer") != std::string::npos ||
      drop_table.find("_route_") != std::string::npos) {
    return telemetry::DropCause::kRoutingMiss;
  }
  return telemetry::DropCause::kNfVerdict;
}

/// Resolves a BESS module name of the form "c<chain>_s<seg>_r<rep>_<nf>"
/// to its chain graph node; -1 for non-NF modules (queues, encaps,
/// generated steering).
int parse_module_node(const std::vector<chain::ChainSpec>& chains,
                      const std::string& name, int* chain_out) {
  int chain = -1, seg = -1, replica = -1, consumed = 0;
  if (std::sscanf(name.c_str(), "c%d_s%d_r%d_%n", &chain, &seg, &replica,
                  &consumed) != 3 ||
      consumed == 0 || chain < 0 ||
      chain >= static_cast<int>(chains.size())) {
    return -1;
  }
  const std::string instance =
      name.substr(static_cast<std::size_t>(consumed));
  for (const auto& node :
       chains[static_cast<std::size_t>(chain)].graph.nodes()) {
    if (node.instance_name == instance) {
      *chain_out = chain;
      return node.id;
    }
  }
  return -1;
}

}  // namespace

/// Wire from the ToR to a server NIC: packets become visible to PortInc
/// once their ready time passes.
class Testbed::WireSource : public bess::PacketSource {
 public:
  explicit WireSource(net::PacketPool* pool) : pool_(pool) {}

  /// False when the FIFO is full (the caller charges the drop).
  bool push(net::Packet pkt, std::uint64_t ready_ns) {
    if (fifo_.size() >= kCapacity) {
      ++drops_;
      pool_->release(std::move(pkt));
      return false;
    }
    fifo_.emplace_back(ready_ns, std::move(pkt));
    return true;
  }

  std::size_t pull(net::PacketBatch& out, std::size_t max,
                   std::uint64_t now_ns) override {
    std::size_t n = 0;
    while (n < max && !fifo_.empty() && fifo_.front().first <= now_ns) {
      out.push(std::move(fifo_.front().second));
      fifo_.pop_front();
      ++n;
    }
    return n;
  }

  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::size_t depth() const { return fifo_.size(); }

  [[nodiscard]] std::map<std::uint32_t, std::uint64_t>
  residents_by_aggregate() const {
    std::map<std::uint32_t, std::uint64_t> out;
    for (const auto& [ready, pkt] : fifo_) ++out[pkt.aggregate_id];
    return out;
  }

  /// Removes and returns every queued packet (fault/recovery flush).
  [[nodiscard]] std::deque<std::pair<std::uint64_t, net::Packet>>
  take_all() {
    return std::exchange(fifo_, {});
  }

 private:
  static constexpr std::size_t kCapacity = 16384;
  net::PacketPool* pool_;
  std::deque<std::pair<std::uint64_t, net::Packet>> fifo_;
  std::uint64_t drops_ = 0;
};

/// Collects server egress for re-injection at the ToR. Closes the open
/// server hop: a hop's exit can never precede its enter, so per-core
/// virtual-clock skew is clamped away rather than producing negative
/// residencies.
class Testbed::ReturnSink : public bess::PacketSink {
 public:
  void push(net::PacketBatch&& batch, std::uint64_t now_ns) override {
    for (auto& pkt : batch) {
      if (!pkt.hops.empty() && pkt.hops.back().exit_ns == 0) {
        auto& hop = pkt.hops.back();
        hop.exit_ns = std::max(hop.enter_ns, now_ns);
      }
      collected_.emplace_back(now_ns, std::move(pkt));
    }
  }

  std::vector<std::pair<std::uint64_t, net::Packet>> drain() {
    return std::exchange(collected_, {});
  }

 private:
  std::vector<std::pair<std::uint64_t, net::Packet>> collected_;
};

Testbed::Testbed(const std::vector<chain::ChainSpec>& chains,
                 const placer::PlacementResult& placement,
                 const metacompiler::CompiledArtifacts& artifacts,
                 const topo::Topology& topo, std::uint64_t seed,
                 FlowMode flow_mode)
    : chains_(&chains),
      placement_(&placement),
      artifacts_(&artifacts),
      topo_(&topo),
      flow_mode_(flow_mode),
      seed_(seed) {
  delivered_bytes_.assign(chains.size(), 0);
  latency_sum_ns_.assign(chains.size(), 0);
  delivered_packets_.assign(chains.size(), 0);
  offered_packets_.assign(chains.size(), 0);
  offered_bytes_.assign(chains.size(), 0);
  latency_ns_.assign(chains.size(), {});
  raw_latency_ns_.assign(chains.size(), {});
  shed_.assign(chains.size(), 0);
  deploy();
}

void Testbed::deploy() {
  error_.clear();
  if (!artifacts_->ok) {
    error_ = "artifacts not compiled: " + artifacts_->error;
    return;
  }
  // Re-run the deployment verifier on the artifacts as handed to us (not
  // the report stored at compile time — artifacts may have been modified
  // since). Error-severity findings mean misrouted traffic or
  // overcommitted resources, so deployment is refused outright.
  const auto report =
      verify::verify_artifacts(*chains_, *placement_, *artifacts_, *topo_);
  if (report.has_errors()) {
    const auto* first = &report.diagnostics.front();
    for (const auto& d : report.diagnostics) {
      if (d.severity == verify::Severity::kError) {
        first = &d;
        break;
      }
    }
    error_ = "deployment verifier found " +
             std::to_string(report.count(verify::Severity::kError)) +
             " error(s); first: [" + first->rule + "] " + first->locus +
             ": " + first->message;
    return;
  }
  endpoints_.clear();
  tor_.reset();
  servers_.clear();
  nics_.clear();
  of_switch_.reset();
  segment_index_ = metacompiler::SegmentIndex(artifacts_->routings);
  // resize, not assign: servers already marked dead stay dead across a
  // swap (the degraded plan routes nothing at them anyway).
  server_dead_.resize(topo_->servers.size(), 0);
  build_endpoints();
  build_tor();
  if (!error_.empty()) return;
  build_servers(seed_);
  build_nics();
  build_openflow();
}

Testbed::~Testbed() = default;

int Testbed::chain_of(std::uint32_t aggregate_id) const {
  for (std::size_t c = 0; c < chains_->size(); ++c) {
    if ((*chains_)[c].aggregate_id == aggregate_id) return static_cast<int>(c);
  }
  return 0;
}

void Testbed::count_drop(const net::Packet& pkt, net::HopPlatform platform,
                         telemetry::DropCause cause) {
  drop_ledger_.add(chain_of(pkt.aggregate_id), platform, cause);
}

void Testbed::append_hop(net::Packet& pkt, net::HopPlatform platform,
                         std::uint16_t id, std::uint64_t exit_ns) {
  if (!tracing_) return;
  net::PacketHop hop;
  hop.platform = platform;
  hop.id = id;
  hop.enter_ns =
      pkt.hops.empty() ? pkt.arrival_ns : pkt.hops.back().exit_ns;
  hop.exit_ns = std::max(hop.enter_ns, exit_ns);
  // NSH coordinates the packet carries *now* — i.e. the segment it is
  // heading into after this hop.
  const auto* layers = pkt.layers();
  if (layers != nullptr && layers->nsh) {
    hop.spi = layers->nsh->spi;
    hop.si = layers->nsh->si;
  }
  pkt.hops.push_back(hop);
}

void Testbed::open_server_hop(net::Packet& pkt, int server,
                              std::uint32_t spi, std::uint8_t si) {
  if (!tracing_) return;
  net::PacketHop hop;
  hop.platform = net::HopPlatform::kServer;
  hop.id = static_cast<std::uint16_t>(server);
  hop.enter_ns =
      pkt.hops.empty() ? pkt.arrival_ns : pkt.hops.back().exit_ns;
  hop.exit_ns = 0;  // Sentinel: the ReturnSink closes the hop at egress.
  if (spi != 0) {
    hop.spi = spi;
    hop.si = si;
  } else if (!pkt.hops.empty()) {
    // The previous hop peeked the NSH coordinates this server entry
    // executes; carry them over without re-parsing.
    hop.spi = pkt.hops.back().spi;
    hop.si = pkt.hops.back().si;
  }
  pkt.hops.push_back(hop);
}

void Testbed::build_endpoints() {
  for (const auto& routing : artifacts_->routings) {
    for (const auto& segment : routing.segments) {
      Endpoint ep;
      ep.target = segment.target;
      if (segment.target == placer::Target::kServer) {
        for (const auto& g : placement_->subgroups) {
          if (g.chain == segment.chain && g.nodes == segment.nodes) {
            ep.server = g.server;
          }
        }
      } else if (segment.target == placer::Target::kSmartNic) {
        ep.server = topo_->smartnics.empty()
                        ? 0
                        : topo_->smartnics.front().attached_server;
      }
      for (const auto& entry : segment.entries) {
        endpoints_[endpoint_key(entry.spi, entry.si)] = ep;
      }
    }
  }
}

void Testbed::build_tor() {
  tor_ = std::make_unique<pisa::PisaSwitch>(artifacts_->p4.program,
                                            topo_->tor);
  auto compiled = tor_->load();
  if (!compiled.ok) {
    error_ = "ToR program failed to compile: " + compiled.error;
    return;
  }
  for (const auto& [table, entry] : artifacts_->p4.entries) {
    if (!tor_->add_entry(table, entry)) {
      error_ = "failed to install entry into '" + table + "'";
      return;
    }
  }
}

void Testbed::build_servers(std::uint64_t seed) {
  servers_.resize(topo_->servers.size());
  for (std::size_t s = 0; s < topo_->servers.size(); ++s) {
    auto& rt = servers_[s];
    rt.dataplane = std::make_unique<bess::ServerDataplane>(
        topo_->servers[s], seed + s);
    rt.dataplane->set_packet_pool(&pool_);
    rt.source = std::make_unique<WireSource>(&pool_);
    rt.sink = std::make_unique<ReturnSink>();
    auto& dp = *rt.dataplane;

    const auto& plan = artifacts_->server_plans[s];
    if (plan.segments.empty()) continue;

    auto* inc = dp.add_module<bess::PortInc>("port_inc", rt.source.get());
    auto* demux = dp.add_module<bess::NshDecap>("demux");
    auto* out = dp.add_module<bess::PortOut>("port_out", rt.sink.get());
    auto* loopback = dp.add_module<bess::Queue>("loopback", 8192);
    inc->connect(0, demux);
    dp.add_task(0, bess::Task(inc));
    dp.add_task(0, bess::Task(loopback, demux));

    int next_core = 1;
    std::map<int, int> shared_core_of_group;
    int demux_gate = 0;
    for (std::size_t i = 0; i < plan.segments.size(); ++i) {
      const auto& seg = plan.segments[i];
      const auto& graph =
          (*chains_)[static_cast<std::size_t>(seg.chain)].graph;
      const std::string id =
          "c" + std::to_string(seg.chain) + "_s" + std::to_string(i);

      // Replica queues fed from the demux (via round-robin when k > 1).
      std::vector<bess::Queue*> queues;
      if (seg.cores > 1) {
        auto* steer =
            dp.add_module<bess::LoadBalanceSteer>("steer_" + id, seg.cores);
        demux->map(seg.spi_in, seg.si_in, demux_gate);
        demux->connect(demux_gate++, steer);
        for (int r = 0; r < seg.cores; ++r) {
          auto* q = dp.add_module<bess::Queue>(
              "q_" + id + "_r" + std::to_string(r), 4096);
          steer->connect(r, q);
          queues.push_back(q);
        }
      } else {
        auto* q = dp.add_module<bess::Queue>("q_" + id + "_r0", 4096);
        demux->map(seg.spi_in, seg.si_in, demux_gate);
        demux->connect(demux_gate++, q);
        queues.push_back(q);
      }

      for (int r = 0; r < seg.cores; ++r) {
        // Per-replica NF instances: replicable stateful NFs partition
        // their state across cores.
        bess::Module* head = nullptr;
        bess::Module* tail = nullptr;
        for (int node_id : seg.nodes) {
          const auto& node = graph.node(node_id);
          // Replicated NATs partition the external port space: each
          // replica allocates from a disjoint range, so translations
          // never collide across cores (the paper's section 3.2
          // future-work scheme).
          nf::NfConfig node_config = node.config;
          if (node.type == nf::NfType::kNat && seg.cores > 1) {
            const std::int64_t base = node_config.int_or("port_base", 10000);
            const std::int64_t span = (65000 - base) / seg.cores;
            node_config.ints["port_base"] = base + r * span;
            // The partition's exclusive upper bound: import_state() keeps
            // only mappings inside [port_base, port_limit), so migrated
            // NAT state lands on exactly one replica.
            node_config.ints["port_limit"] = base + (r + 1) * span;
            node_config.ints["entries"] =
                std::min<std::int64_t>(node_config.int_or("entries", 12000),
                                       span);
          }
          auto nf_impl = nf::make_software_nf(node.type, node_config);
          // Branch Match NFs with no configured rules take the
          // metacompiler's generated steering rules.
          if (node.type == nf::NfType::kMatch &&
              !seg.generated_steering.empty() &&
              node_id == seg.nodes.back()) {
            auto* match = dynamic_cast<nf::MatchNf*>(nf_impl.get());
            if (match != nullptr && match->match_rules().empty()) {
              for (const auto& rule : seg.generated_steering) {
                match->add_rule(rule);
              }
            }
          }
          auto* module = dp.add_module<nf::NfModule>(
              id + "_r" + std::to_string(r) + "_" + node.instance_name,
              std::move(nf_impl));
          if (head == nullptr) head = module;
          if (tail != nullptr) tail->connect(0, module);
          tail = module;
        }

        // Generated steering module after a non-Match branching tail.
        const int tail_node = seg.nodes.back();
        const bool tail_is_match =
            graph.node(tail_node).type == nf::NfType::kMatch;
        if (seg.needs_generated_steering() && !tail_is_match) {
          nf::NfConfig empty;
          auto steer_nf = std::make_unique<nf::MatchNf>(empty);
          for (const auto& rule : seg.generated_steering) {
            steer_nf->add_rule(rule);
          }
          auto* module = dp.add_module<nf::NfModule>(
              id + "_r" + std::to_string(r) + "_gen_steer",
              std::move(steer_nf));
          if (tail != nullptr) tail->connect(0, module);
          if (head == nullptr) head = module;
          tail = module;
        }

        // Exits: NSH re-encapsulation per gate; local hand-offs loop back
        // into the shared demux without touching the NIC.
        for (const auto& exit : seg.exits) {
          auto* encap = dp.add_module<bess::NshEncap>(
              "encap_" + id + "_r" + std::to_string(r) + "_g" +
                  std::to_string(exit.gate),
              exit.spi, exit.si);
          tail->connect(exit.gate, encap);
          const auto it =
              endpoints_.find(endpoint_key(exit.spi, exit.si));
          const bool local = it != endpoints_.end() &&
                             it->second.target == placer::Target::kServer &&
                             it->second.server == static_cast<int>(s);
          encap->connect(0, local ? static_cast<bess::Module*>(loopback)
                                  : static_cast<bess::Module*>(out));
        }

        // Schedule this replica. Shared-core groups (round-robin
        // subgroups, appendix A.1.3) land on one physical core; dedicated
        // replicas fill cores sequentially — socket 0 first, matching the
        // paper's observation that same-socket placement often beats the
        // worst-case cross-NUMA profile.
        int core;
        if (seg.core_group >= 0) {
          auto it = shared_core_of_group.find(seg.core_group);
          if (it == shared_core_of_group.end()) {
            core = next_core < dp.num_cores() ? next_core
                                              : dp.num_cores() - 1;
            shared_core_of_group.emplace(seg.core_group, core);
            ++next_core;
          } else {
            core = it->second;
          }
        } else {
          core = next_core < dp.num_cores() ? next_core
                                            : dp.num_cores() - 1;
          ++next_core;
        }
        // t_max enforcement lives in the BESS scheduler (appendix
        // A.1.3): each replica's task is rate-limited to its share of
        // the chain's burst cap.
        bess::RateLimit limit;
        const double t_max =
            (*chains_)[static_cast<std::size_t>(seg.chain)].slo.t_max_gbps;
        if (t_max < chain::Slo::kUnbounded) {
          limit.bits_per_sec = t_max * 1e9 * seg.traffic_fraction /
                               std::max(1, seg.cores);
          limit.burst_bits = 2e6;
        }
        dp.add_task(core, bess::Task(queues[static_cast<std::size_t>(r)],
                                     head),
                    limit);
      }
    }
  }
}

void Testbed::build_nics() {
  for (const auto& artifact : artifacts_->nic_programs) {
    const int server =
        topo_->smartnics.empty()
            ? 0
            : topo_->smartnics[static_cast<std::size_t>(artifact.smartnic)]
                  .attached_server;
    auto& rt = nics_[server];
    if (!rt.device) {
      rt.device = std::make_unique<nic::SmartNic>(
          topo_->smartnics[static_cast<std::size_t>(artifact.smartnic)]);
      nic::HelperConfig helpers;
      nf::derive_key_material("lemur-chacha-key", helpers.chacha_key);
      nf::derive_key_material("lemur-nonce", helpers.chacha_nonce);
      auto verdict = rt.device->load(artifact.program, helpers);
      if (!verdict.ok) {
        error_ = "SmartNIC program rejected: " + verdict.error;
        return;
      }
    }
    rt.artifacts.push_back(&artifact);
  }
}

void Testbed::build_openflow() {
  if (artifacts_->of_rules.empty()) return;
  of_switch_ = std::make_unique<openflow::OpenFlowSwitch>(
      topo_->openflow.value_or(topo::OpenFlowSwitchSpec{}));
  for (const auto& artifact : artifacts_->of_rules) {
    for (auto rule : artifact.rules) {
      std::string install_error;
      if (!of_switch_->install(std::move(rule), &install_error)) {
        error_ = "OpenFlow rule rejected: " + install_error;
        return;
      }
    }
  }
}

void Testbed::count_fault_drop(const net::Packet& pkt,
                               net::HopPlatform platform,
                               const std::string& element) {
  count_drop(pkt, platform, telemetry::DropCause::kFault);
  // The per-element counter is the recovery controller's localization
  // signal: a ledger spike says *that* something died, this says *what*.
  metrics_.counter("fault." + element + ".drops").add(1);
}

void Testbed::flush_server(int s, telemetry::DropCause cause,
                           const char* element) {
  auto& rt = servers_[static_cast<std::size_t>(s)];
  std::uint64_t flushed = 0;
  auto charge = [&](net::Packet&& pkt, net::HopPlatform platform) {
    count_drop(pkt, platform, cause);
    ++flushed;
    pool_.release(std::move(pkt));
  };
  if (rt.source) {
    for (auto& [ready, pkt] : rt.source->take_all()) {
      charge(std::move(pkt), net::HopPlatform::kWire);
    }
  }
  if (rt.dataplane) {
    for (auto& module : rt.dataplane->modules()) {
      if (auto* q = dynamic_cast<bess::Queue*>(module.get())) {
        for (auto& pkt : q->take_all()) {
          charge(std::move(pkt), net::HopPlatform::kServer);
        }
      }
    }
  }
  if (rt.sink) {
    for (auto& [t, pkt] : rt.sink->drain()) {
      charge(std::move(pkt), net::HopPlatform::kServer);
    }
  }
  if (flushed == 0) return;
  if (cause == telemetry::DropCause::kRecovery) {
    recovery_flush_drops_ += flushed;
  }
  if (element != nullptr) {
    metrics_.counter(std::string("fault.") + element + ".drops")
        .add(flushed);
  }
}

void Testbed::apply_fault_onsets(std::uint64_t now_ns) {
  if (faults_ == nullptr) return;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (server_dead_[s] != 0 ||
        !faults_->server_dead(static_cast<int>(s), now_ns)) {
      continue;
    }
    server_dead_[s] = 1;
    // Everything resident on the dying server is lost right now.
    const std::string element = "server" + std::to_string(s);
    flush_server(static_cast<int>(s), telemetry::DropCause::kFault,
                 element.c_str());
  }
}

void Testbed::set_chain_shed(int chain, bool shed) {
  if (chain < 0 || chain >= static_cast<int>(shed_.size())) return;
  shed_[static_cast<std::size_t>(chain)] = shed ? 1 : 0;
}

void Testbed::export_nf_state() {
  exported_state_.clear();
  for (auto& rt : servers_) {
    if (!rt.dataplane) continue;
    for (auto& module : rt.dataplane->modules()) {
      auto* nf_module = dynamic_cast<nf::NfModule*>(module.get());
      if (nf_module == nullptr || !nf_module->nf().has_state()) continue;
      int chain = -1;
      const int node_id =
          parse_module_node(*chains_, module->name(), &chain);
      if (node_id < 0) continue;
      // Replicas of the same logical NF append their blocks to one
      // snapshot; importers scan the concatenation and keep what is
      // theirs (the NAT filters by port partition).
      nf_module->nf().export_state(exported_state_[{chain, node_id}]);
    }
  }
}

void Testbed::import_nf_state() {
  for (auto& rt : servers_) {
    if (!rt.dataplane) continue;
    for (auto& module : rt.dataplane->modules()) {
      auto* nf_module = dynamic_cast<nf::NfModule*>(module.get());
      if (nf_module == nullptr || !nf_module->nf().has_state()) continue;
      int chain = -1;
      const int node_id =
          parse_module_node(*chains_, module->name(), &chain);
      if (node_id < 0) continue;
      const auto it = exported_state_.find({chain, node_id});
      if (it == exported_state_.end() || it->second.empty()) continue;
      nf_module->nf().import_state(it->second.data(), it->second.size());
    }
  }
}

bool Testbed::swap_plan(const std::vector<chain::ChainSpec>& chains,
                        const placer::PlacementResult& placement,
                        const metacompiler::CompiledArtifacts& artifacts,
                        const topo::Topology& topo, std::uint64_t now_ns,
                        std::string* error) {
  // Verify first: a plan that fails verification must never evict the
  // one that is running.
  if (!artifacts.ok) {
    if (error != nullptr) {
      *error = "artifacts not compiled: " + artifacts.error;
    }
    return false;
  }
  const auto report =
      verify::verify_artifacts(chains, placement, artifacts, topo);
  if (report.has_errors()) {
    if (error != nullptr) {
      const auto* first = &report.diagnostics.front();
      for (const auto& d : report.diagnostics) {
        if (d.severity == verify::Severity::kError) {
          first = &d;
          break;
        }
      }
      *error = "swap refused: [" + first->rule + "] " + first->locus +
               ": " + first->message;
    }
    return false;
  }

  // Capture stateful NF state from the live replicas before teardown.
  export_nf_state();

  // Flush in-flight packets. NSH-tagged packets are mid-chain in the old
  // plan's segment space, which the new plan renumbers — they cannot be
  // replayed, so they are charged to the ledger (cause=recovery-flush)
  // and conservation still holds. Untagged packets are fresh arrivals
  // that simply re-enter through the new ToR program.
  std::deque<std::pair<std::uint64_t, net::Packet>> keep;
  std::uint64_t flushed = 0;
  for (auto& [ready, pkt] : to_switch_) {
    const auto* layers = pkt.layers();
    if (layers != nullptr && layers->nsh) {
      count_drop(pkt, net::HopPlatform::kTor,
                 telemetry::DropCause::kRecovery);
      ++flushed;
      pool_.release(std::move(pkt));
    } else {
      keep.emplace_back(ready, std::move(pkt));
    }
  }
  to_switch_ = std::move(keep);
  recovery_flush_drops_ += flushed;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    flush_server(static_cast<int>(s), telemetry::DropCause::kRecovery,
                 nullptr);
  }

  // Atomic cutover: repoint the live plan and rebuild the rack. The
  // verifier already accepted this plan, so deploy() can only fail on a
  // compile regression — surfaced via error_/ok() like a ctor failure.
  chains_ = &chains;
  placement_ = &placement;
  artifacts_ = &artifacts;
  topo_ = &topo;
  deploy();
  if (!ok()) {
    if (error != nullptr) *error = error_;
    return false;
  }
  import_nf_state();
  ++plan_generation_;
  metrics_.counter("recovery.plan_swaps").add(1);
  metrics_.gauge("recovery.last_swap_ns")
      .set(static_cast<double>(now_ns));
  return true;
}

bool Testbed::capture_egress_to(const std::string& path) {
  auto writer = std::make_unique<net::PcapWriter>(path);
  if (!writer->ok()) return false;
  egress_capture_ = std::move(writer);
  return true;
}

void Testbed::deliver(net::Packet&& pkt, std::uint64_t ready_ns) {
  if (egress_hook_) egress_hook_(pkt);
  if (egress_capture_) egress_capture_->write(pkt, ready_ns);
  const auto chain =
      static_cast<std::size_t>(chain_of(pkt.aggregate_id));
  delivered_bytes_[chain] += pkt.size();
  delivered_packets_[chain] += 1;
  const std::uint64_t latency =
      ready_ns > pkt.arrival_ns ? ready_ns - pkt.arrival_ns : 0;
  latency_sum_ns_[chain] += latency;
  latency_ns_[chain].record(latency);
  if (record_raw_latencies_) raw_latency_ns_[chain].push_back(latency);
  if (tracing_) {
    traces_.observe(pkt, ready_ns, static_cast<int>(chain));
  }
  pool_.release(std::move(pkt));  // Delivered: the buffer is dead.
}

void Testbed::to_server(net::Packet&& pkt, int server,
                        std::uint64_t ready_ns) {
  // Injected faults intercept the packet before it reaches the NIC/wire.
  if (server_dead_[static_cast<std::size_t>(server)] ||
      (faults_ != nullptr && faults_->server_dead(server, ready_ns))) {
    count_fault_drop(pkt, net::HopPlatform::kServer,
                     "server" + std::to_string(server));
    pool_.release(std::move(pkt));
    return;
  }
  if (faults_ != nullptr && faults_->tor_link_down(server, ready_ns)) {
    count_fault_drop(pkt, net::HopPlatform::kWire,
                     "link" + std::to_string(server));
    pool_.release(std::move(pkt));
    return;
  }
  if (faults_ != nullptr) {
    switch (faults_->wire_impairment(server, ready_ns)) {
      case FaultScheduler::Impairment::kCorrupt:
        count_fault_drop(pkt, net::HopPlatform::kWire,
                         "wire" + std::to_string(server));
        pool_.release(std::move(pkt));
        return;
      case FaultScheduler::Impairment::kDuplicate: {
        // The clone is extra offered load (conservation: both copies are
        // charged somewhere). It bypasses the impairment coin so a
        // rate-1.0 duplication event cannot amplify without bound.
        net::Packet clone = pkt;
        const auto c = static_cast<std::size_t>(chain_of(pkt.aggregate_id));
        ++offered_packets_[c];
        offered_bytes_[c] += clone.size();
        inject_server(std::move(clone), server, ready_ns);
        break;
      }
      case FaultScheduler::Impairment::kReorder:
        // Reordering is modeled as extra wire residency: the packet slips
        // behind later arrivals but is never lost.
        ready_ns += 300'000;
        break;
      case FaultScheduler::Impairment::kNone:
        break;
    }
  }
  inject_server(std::move(pkt), server, ready_ns);
}

void Testbed::inject_server(net::Packet&& pkt, int server,
                            std::uint64_t ready_ns) {
  // In-line SmartNIC first.
  auto nic_it = nics_.find(server);
  if (nic_it != nics_.end()) {
    const auto* layers = pkt.layers();
    if (layers != nullptr && layers->nsh) {
      for (const auto* artifact : nic_it->second.artifacts) {
        if (artifact->spi_in != layers->nsh->spi ||
            artifact->si_in != layers->nsh->si) {
          continue;
        }
        if (faults_ != nullptr &&
            faults_->nic_dead(artifact->smartnic, ready_ns)) {
          count_fault_drop(pkt, net::HopPlatform::kSmartNic,
                           "smartnic" + std::to_string(artifact->smartnic));
          pool_.release(std::move(pkt));
          return;
        }
        auto& rt = nic_it->second;
        // Engine occupancy: serialized packet processing.
        const auto& spec = rt.device->spec();
        const auto& server_spec =
            topo_->servers[static_cast<std::size_t>(server)];
        const auto& node = (*chains_)[static_cast<std::size_t>(artifact->chain)]
                               .graph.node(artifact->node);
        const auto cost_cycles =
            nf::effective_cycle_cost(node.type, node.config);
        const auto cost_ns = static_cast<std::uint64_t>(
            static_cast<double>(cost_cycles) /
            (server_spec.clock_ghz * spec.speedup_vs_core));
        const std::uint64_t start = std::max(ready_ns, rt.engine_free_ns);
        if (start - ready_ns > 1'000'000) {  // >1ms backlog: overload.
          count_drop(pkt, net::HopPlatform::kSmartNic,
                     telemetry::DropCause::kQueueOverflow);
          pool_.release(std::move(pkt));
          return;
        }
        rt.engine_free_ns = start + cost_ns;
        ++rt.packets;
        rt.device->process(pkt, cost_cycles);
        if (pkt.drop) {
          count_drop(pkt, net::HopPlatform::kSmartNic,
                     telemetry::DropCause::kNfVerdict);
          pool_.release(std::move(pkt));
          return;
        }
        net::set_nsh(pkt, artifact->spi_out, artifact->si_out);
        const std::uint64_t done = rt.engine_free_ns;
        if (tracing_) {
          net::PacketHop hop;
          hop.platform = net::HopPlatform::kSmartNic;
          hop.id = static_cast<std::uint16_t>(artifact->smartnic);
          hop.spi = artifact->spi_in;
          hop.si = artifact->si_in;
          hop.enter_ns = pkt.hops.empty() ? pkt.arrival_ns
                                          : pkt.hops.back().exit_ns;
          hop.exit_ns = std::max(hop.enter_ns, done);
          pkt.hops.push_back(hop);
        }
        const auto ep =
            endpoints_.find(endpoint_key(artifact->spi_out,
                                         artifact->si_out));
        if (ep != endpoints_.end() &&
            ep->second.target == placer::Target::kServer &&
            ep->second.server == server) {
          open_server_hop(pkt, server, artifact->spi_out,
                          artifact->si_out);
          const std::uint32_t aggregate = pkt.aggregate_id;
          if (!servers_[static_cast<std::size_t>(server)].source->push(
                  std::move(pkt), done)) {
            drop_ledger_.add(chain_of(aggregate), net::HopPlatform::kWire,
                             telemetry::DropCause::kQueueOverflow);
          }
        } else {
          to_switch_.emplace_back(
              done + static_cast<std::uint64_t>(
                         topo_->bounce_latency_us * 1000),
              std::move(pkt));
        }
        return;
      }
    }
  }
  open_server_hop(pkt, server);
  const std::uint32_t aggregate = pkt.aggregate_id;
  if (!servers_[static_cast<std::size_t>(server)].source->push(
          std::move(pkt), ready_ns)) {
    drop_ledger_.add(chain_of(aggregate), net::HopPlatform::kWire,
                     telemetry::DropCause::kQueueOverflow);
  }
}

void Testbed::through_openflow(net::Packet&& pkt, std::uint64_t ready_ns) {
  if (faults_ != nullptr && faults_->openflow_down(ready_ns)) {
    count_fault_drop(pkt, net::HopPlatform::kOpenFlow, "openflow");
    pool_.release(std::move(pkt));
    return;
  }
  if (!of_switch_) {
    count_drop(pkt, net::HopPlatform::kOpenFlow,
               telemetry::DropCause::kRoutingMiss);
    pool_.release(std::move(pkt));
    return;
  }
  const auto* layers = pkt.layers();
  if (layers == nullptr || !layers->nsh) {
    count_drop(pkt, net::HopPlatform::kOpenFlow,
               telemetry::DropCause::kRoutingMiss);
    pool_.release(std::move(pkt));
    return;
  }
  const metacompiler::OfArtifact* artifact = nullptr;
  for (const auto& a : artifacts_->of_rules) {
    if (a.spi_in == layers->nsh->spi && a.si_in == layers->nsh->si) {
      artifact = &a;
    }
  }
  if (artifact == nullptr) {
    count_drop(pkt, net::HopPlatform::kOpenFlow,
               telemetry::DropCause::kRoutingMiss);
    pool_.release(std::move(pkt));
    return;
  }
  // NSH -> VLAN at the OF boundary (the OF ASIC has no NSH support).
  net::pop_nsh(pkt);
  net::push_vlan(pkt, artifact->vid_in);
  const auto result = of_switch_->process(pkt);
  if (result.dropped) {
    count_drop(pkt, net::HopPlatform::kOpenFlow,
               telemetry::DropCause::kNfVerdict);
    pool_.release(std::move(pkt));
    return;
  }
  net::pop_vlan(pkt);
  net::push_nsh(pkt, artifact->spi_out, artifact->si_out);
  const std::uint64_t out_ns =
      ready_ns + 2 * static_cast<std::uint64_t>(
                         topo_->bounce_latency_us * 1000);
  if (tracing_) {
    net::PacketHop hop;
    hop.platform = net::HopPlatform::kOpenFlow;
    hop.id = 0;
    hop.spi = artifact->spi_in;
    hop.si = artifact->si_in;
    hop.enter_ns =
        pkt.hops.empty() ? pkt.arrival_ns : pkt.hops.back().exit_ns;
    hop.exit_ns = std::max(hop.enter_ns, out_ns);
    pkt.hops.push_back(hop);
  }
  to_switch_.emplace_back(out_ns, std::move(pkt));
}

void Testbed::route_from_switch(net::Packet&& pkt,
                                std::uint32_t egress_port,
                                std::uint64_t ready_ns) {
  metacompiler::PortMap ports;
  if (egress_port == ports.network_egress) {
    deliver(std::move(pkt), ready_ns);
    return;
  }
  if (egress_port == ports.of_switch) {
    through_openflow(std::move(pkt), ready_ns);
    return;
  }
  for (std::size_t s = 0; s < topo_->servers.size(); ++s) {
    if (egress_port == ports.server(static_cast<int>(s))) {
      const std::uint64_t bounce =
          static_cast<std::uint64_t>(topo_->bounce_latency_us * 1000);
      to_server(std::move(pkt), static_cast<int>(s), ready_ns + bounce);
      return;
    }
  }
  count_drop(pkt, net::HopPlatform::kTor,
             telemetry::DropCause::kRoutingMiss);  // Unknown port.
  pool_.release(std::move(pkt));
}

void Testbed::sample_queue_depths() {
  metrics_.gauge("tor.backlog").set(static_cast<double>(to_switch_.size()));
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    const auto& rt = servers_[s];
    if (!rt.dataplane) continue;
    const std::string prefix = "server" + std::to_string(s);
    const auto wire_depth = rt.source ? rt.source->depth() : 0;
    metrics_.gauge(prefix + ".wire_depth")
        .set(static_cast<double>(wire_depth));
    metrics_.histogram(prefix + ".wire_depth").record(wire_depth);
    std::uint64_t queued = 0;
    for (const auto& module : rt.dataplane->modules()) {
      if (const auto* q = dynamic_cast<const bess::Queue*>(module.get())) {
        queued += q->depth();
      }
    }
    metrics_.gauge(prefix + ".queue_depth")
        .set(static_cast<double>(queued));
    metrics_.histogram(prefix + ".queue_depth").record(queued);
  }
}

void Testbed::sweep_module_drops() {
  for (const auto& rt : servers_) {
    if (!rt.dataplane) continue;
    for (const auto& module : rt.dataplane->modules()) {
      if (module->drops_total() == 0) continue;
      telemetry::DropCause cause = telemetry::DropCause::kRoutingMiss;
      if (dynamic_cast<const bess::Queue*>(module.get()) != nullptr) {
        cause = telemetry::DropCause::kQueueOverflow;
      } else if (dynamic_cast<const nf::NfModule*>(module.get()) !=
                 nullptr) {
        cause = telemetry::DropCause::kNfVerdict;
      }
      for (const auto& [aggregate, n] : module->drops_by_aggregate()) {
        drop_ledger_.add(chain_of(aggregate), net::HopPlatform::kServer,
                         cause, n);
      }
    }
  }
}

void Testbed::sweep_residuals(Measurement& out) {
  out.chain_residual.assign(chains_->size(), 0);
  auto credit = [&](std::uint32_t aggregate, std::uint64_t n) {
    out.chain_residual[static_cast<std::size_t>(chain_of(aggregate))] += n;
    out.residual_queued += n;
  };
  for (const auto& [ready, pkt] : to_switch_) credit(pkt.aggregate_id, 1);
  for (const auto& rt : servers_) {
    if (rt.source) {
      for (const auto& [aggregate, n] : rt.source->residents_by_aggregate()) {
        credit(aggregate, n);
      }
    }
    if (!rt.dataplane) continue;
    for (const auto& module : rt.dataplane->modules()) {
      if (const auto* q = dynamic_cast<const bess::Queue*>(module.get())) {
        for (const auto& [aggregate, n] : q->residents_by_aggregate()) {
          credit(aggregate, n);
        }
      }
    }
  }
}

std::vector<telemetry::MeasuredNfProfile> Testbed::measured_nf_profiles()
    const {
  // Aggregate replicas of the same (chain, node) into one row.
  std::map<std::pair<int, int>, telemetry::MeasuredNfProfile> rows;
  for (const auto& rt : servers_) {
    if (!rt.dataplane) continue;
    for (const auto& module : rt.dataplane->modules()) {
      const auto* nf_module =
          dynamic_cast<const nf::NfModule*>(module.get());
      if (nf_module == nullptr || nf_module->packets_in() == 0) continue;
      // Module names are "c<chain>_s<seg>_r<replica>_<instance>".
      int chain = -1, seg = -1, replica = -1, consumed = 0;
      if (std::sscanf(module->name().c_str(), "c%d_s%d_r%d_%n", &chain,
                      &seg, &replica, &consumed) != 3 ||
          consumed == 0) {
        continue;
      }
      const std::string instance = module->name().substr(
          static_cast<std::size_t>(consumed));
      const auto& graph = (*chains_)[static_cast<std::size_t>(chain)].graph;
      int node_id = -1;
      for (const auto& node : graph.nodes()) {
        if (node.instance_name == instance) {
          node_id = node.id;
          break;
        }
      }
      if (node_id < 0) continue;  // Generated steering, not a chain NF.
      auto& row = rows[{chain, node_id}];
      if (row.packets == 0) {
        row.chain = chain;
        row.node = node_id;
        row.type = nf_module->nf().type();
        row.name = instance;
        row.platform = net::HopPlatform::kServer;
      }
      const double total =
          row.cycles_per_packet * static_cast<double>(row.packets) +
          static_cast<double>(nf_module->cycles_charged());
      row.packets += nf_module->packets_in();
      row.cycles_per_packet = total / static_cast<double>(row.packets);
    }
  }
  std::vector<telemetry::MeasuredNfProfile> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) out.push_back(std::move(row));
  // NIC-placed NFs: the engine charges the profiled cost exactly, so the
  // measured profile is the charge itself, at the device's packet count.
  for (const auto& [server, rt] : nics_) {
    for (const auto* artifact : rt.artifacts) {
      const auto& node = (*chains_)[static_cast<std::size_t>(artifact->chain)]
                             .graph.node(artifact->node);
      telemetry::MeasuredNfProfile row;
      row.chain = artifact->chain;
      row.node = artifact->node;
      row.type = artifact->type;
      row.name = node.instance_name;
      row.platform = net::HopPlatform::kSmartNic;
      row.packets = rt.packets;
      row.cycles_per_packet = static_cast<double>(
          nf::effective_cycle_cost(node.type, node.config));
      out.push_back(std::move(row));
    }
  }
  return out;
}

Measurement Testbed::run(double duration_ms, double offered_headroom,
                         const std::vector<double>& offered_gbps) {
  Measurement out;
  if (!ok()) return out;

  // Offered load: the LP assignment plus headroom, unless overridden.
  std::vector<RateShapedSource> sources;
  for (std::size_t c = 0; c < chains_->size(); ++c) {
    ChainTrafficModel model((*chains_)[c], seed_ + 100 + c, flow_mode_);
    const double offered =
        c < offered_gbps.size()
            ? offered_gbps[c]
            : std::min(placement_->chains[c].assigned_gbps * offered_headroom,
                       (*chains_)[c].slo.t_max_gbps);
    sources.emplace_back(std::move(model), offered);
  }

  const std::uint64_t duration_ns =
      static_cast<std::uint64_t>(duration_ms * 1e6);
  constexpr std::uint64_t kQuantumNs = 100'000;  // 100 us.
  std::uint64_t now = 0;
  std::vector<net::Packet> fresh;  // Injection scratch, reused per quantum.
  // Extra drain quanta flush in-flight packets after injection stops.
  const std::uint64_t drain_until = duration_ns + 20 * kQuantumNs;

  while (now < drain_until) {
    const std::uint64_t quantum_end = now + kQuantumNs;
    // 0. Fault onsets take effect at the quantum boundary (a dying
    // server loses its resident packets immediately).
    apply_fault_onsets(now);
    // 1. Inject fresh traffic (within the measurement window only).
    if (now < duration_ns) {
      for (std::size_t c = 0; c < sources.size(); ++c) {
        fresh.clear();
        sources[c].emit_until(quantum_end, fresh, &pool_);
        for (auto& pkt : fresh) {
          const std::uint64_t t = pkt.arrival_ns;
          ++offered_packets_[c];
          offered_bytes_[c] += pkt.size();
          to_switch_.emplace_back(t, std::move(pkt));
        }
      }
    }
    // 2. ToR processing for everything that has arrived.
    std::deque<std::pair<std::uint64_t, net::Packet>> later;
    while (!to_switch_.empty()) {
      auto [ready, pkt] = std::move(to_switch_.front());
      to_switch_.pop_front();
      if (ready > quantum_end) {
        later.emplace_back(ready, std::move(pkt));
        continue;
      }
      // Admission control for shed chains: still offered, dropped at the
      // ToR with an explicit degradation cause.
      const int c = chain_of(pkt.aggregate_id);
      if (shed_[static_cast<std::size_t>(c)] != 0) {
        drop_ledger_.add(c, net::HopPlatform::kTor,
                         telemetry::DropCause::kAdmissionShed);
        pool_.release(std::move(pkt));
        continue;
      }
      const auto result = tor_->process(pkt);
      if (result.dropped) {
        count_drop(pkt, net::HopPlatform::kTor,
                   classify_tor_drop(result.drop_table));
        pool_.release(std::move(pkt));
        continue;
      }
      append_hop(pkt, net::HopPlatform::kTor, 0, ready);
      route_from_switch(std::move(pkt), result.egress_port, ready);
    }
    to_switch_ = std::move(later);
    // 3. Server dataplanes advance to the quantum boundary (dead servers
    // execute nothing).
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      auto& rt = servers_[s];
      if (rt.dataplane && server_dead_[s] == 0) {
        rt.dataplane->run_until_ns(quantum_end);
      }
    }
    // 4. Server egress returns to the ToR after a bounce.
    const std::uint64_t bounce =
        static_cast<std::uint64_t>(topo_->bounce_latency_us * 1000);
    for (auto& rt : servers_) {
      if (!rt.sink) continue;
      for (auto& [t, pkt] : rt.sink->drain()) {
        to_switch_.emplace_back(t + bounce, std::move(pkt));
      }
    }
    sample_queue_depths();
    // 5. The recovery controller observes this quantum's telemetry and,
    // when it decides to, swaps the plan in the gap between quanta.
    if (recovery_ != nullptr) {
      recovery_->on_quantum(*this, quantum_end);
      if (!ok()) break;  // A swap's deploy() failed; abort the run.
    }
    now = quantum_end;
  }

  sweep_module_drops();
  sweep_residuals(out);

  out.chain_gbps.resize(chains_->size());
  out.chain_latency_us.resize(chains_->size());
  out.chain_p50_us.resize(chains_->size());
  out.chain_p95_us.resize(chains_->size());
  out.chain_p99_us.resize(chains_->size());
  out.chain_max_us.resize(chains_->size());
  out.chain_offered.resize(chains_->size());
  out.chain_delivered.resize(chains_->size());
  out.chain_dropped.resize(chains_->size());
  std::vector<double> offered_gbps_v(chains_->size(), 0);
  for (std::size_t c = 0; c < chains_->size(); ++c) {
    // bits / ns == Gbps.
    out.chain_gbps[c] = static_cast<double>(delivered_bytes_[c]) * 8.0 /
                        (duration_ms * 1e6);
    out.aggregate_gbps += out.chain_gbps[c];
    out.chain_latency_us[c] =
        delivered_packets_[c] > 0
            ? static_cast<double>(latency_sum_ns_[c]) /
                  static_cast<double>(delivered_packets_[c]) / 1000.0
            : 0;
    const auto& hist = latency_ns_[c];
    if (hist.count() > 0) {
      out.chain_p50_us[c] = hist.quantile(0.50) / 1e3;
      out.chain_p95_us[c] = hist.quantile(0.95) / 1e3;
      out.chain_p99_us[c] = hist.quantile(0.99) / 1e3;
      out.chain_max_us[c] = static_cast<double>(hist.max()) / 1e3;
    }
    out.chain_offered[c] = offered_packets_[c];
    out.offered_packets += offered_packets_[c];
    out.chain_delivered[c] = delivered_packets_[c];
    out.chain_dropped[c] =
        drop_ledger_.chain_total(static_cast<int>(c));
    out.delivered_packets += delivered_packets_[c];
    offered_gbps_v[c] = static_cast<double>(offered_bytes_[c]) * 8.0 /
                        (duration_ms * 1e6);
  }
  // Legacy semantics: fabric drops only — in-server losses (NF verdicts,
  // queue overflow inside a pipeline) stay in unaccounted().
  out.dropped_packets = 0;
  for (const auto& [key, n] : drop_ledger_.cells()) {
    if (std::get<1>(key) != net::HopPlatform::kServer) {
      out.dropped_packets += n;
    }
  }
  out.drops = drop_ledger_;

  // Finalize the metrics registry.
  for (std::size_t c = 0; c < chains_->size(); ++c) {
    const std::string prefix = "chain" + std::to_string(c);
    metrics_.counter(prefix + ".offered_packets").add(offered_packets_[c]);
    metrics_.counter(prefix + ".delivered_packets")
        .add(delivered_packets_[c]);
    metrics_.histogram(prefix + ".latency_ns").merge(latency_ns_[c]);
  }
  for (const auto& [key, n] : drop_ledger_.cells()) {
    metrics_
        .counter("chain" + std::to_string(std::get<0>(key)) + ".drops." +
                 net::to_string(std::get<1>(key)) + "." +
                 telemetry::to_string(std::get<2>(key)))
        .add(n);
  }

  // SLO compliance for the run.
  std::vector<const telemetry::LatencyHistogram*> hists;
  hists.reserve(chains_->size());
  for (const auto& hist : latency_ns_) hists.push_back(&hist);
  out.slo = telemetry::evaluate_slo(*chains_, *placement_, offered_gbps_v,
                                    out.chain_gbps, hists, traces_,
                                    drop_ledger_);
  if (recovery_ != nullptr) out.recovery = recovery_->events();
  return out;
}

std::string Testbed::stats_json(const Measurement& m) const {
  telemetry::JsonWriter w;
  w.begin_object();

  w.key("measurement");
  w.begin_object();
  w.kv("aggregate_gbps", m.aggregate_gbps);
  w.kv("offered_packets", m.offered_packets);
  w.kv("delivered_packets", m.delivered_packets);
  w.kv("dropped_packets", m.dropped_packets);
  w.kv("residual_queued", m.residual_queued);
  w.key("chains");
  w.begin_array();
  for (std::size_t c = 0; c < chains_->size(); ++c) {
    w.begin_object();
    w.kv("chain", static_cast<int>(c) + 1);
    w.kv("name", (*chains_)[c].name);
    w.kv("gbps", c < m.chain_gbps.size() ? m.chain_gbps[c] : 0);
    w.kv("latency_mean_us",
         c < m.chain_latency_us.size() ? m.chain_latency_us[c] : 0);
    w.kv("latency_p50_us", c < m.chain_p50_us.size() ? m.chain_p50_us[c] : 0);
    w.kv("latency_p95_us", c < m.chain_p95_us.size() ? m.chain_p95_us[c] : 0);
    w.kv("latency_p99_us", c < m.chain_p99_us.size() ? m.chain_p99_us[c] : 0);
    w.kv("latency_max_us", c < m.chain_max_us.size() ? m.chain_max_us[c] : 0);
    w.kv("offered", c < m.chain_offered.size() ? m.chain_offered[c] : 0);
    w.kv("delivered",
         c < m.chain_delivered.size() ? m.chain_delivered[c] : 0);
    w.kv("dropped", c < m.chain_dropped.size() ? m.chain_dropped[c] : 0);
    w.kv("residual", c < m.chain_residual.size() ? m.chain_residual[c] : 0);
    w.kv("slo_compliant", m.slo.compliant(static_cast<int>(c)));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("slo");
  w.begin_object();
  w.kv("compliant", m.slo.compliant());
  w.key("violations");
  w.begin_array();
  for (const auto& v : m.slo.violations) {
    w.begin_object();
    w.kv("chain", v.chain + 1);
    w.kv("kind", telemetry::to_string(v.kind));
    w.kv("observed", v.observed);
    w.kv("bound", v.bound);
    w.kv("responsible_hop", v.responsible_hop);
    w.kv("hop_share", v.hop_share);
    w.kv("detail", v.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("drops");
  w.begin_array();
  for (const auto& [key, n] : m.drops.cells()) {
    w.begin_object();
    w.kv("chain", std::get<0>(key) + 1);
    w.kv("platform", net::to_string(std::get<1>(key)));
    w.kv("cause", telemetry::to_string(std::get<2>(key)));
    w.kv("count", n);
    w.end_object();
  }
  w.end_array();

  w.key("hops");
  w.begin_array();
  for (const auto& [key, stats] : traces_.hops()) {
    w.begin_object();
    w.kv("chain", key.first + 1);
    w.kv("hop", telemetry::to_string(key.second));
    if (key.second.spi != 0) {
      w.kv("segment", segment_index_.label(key.second.spi, key.second.si));
    }
    w.kv("packets", stats.packets);
    w.kv("mean_ns", stats.mean_ns());
    w.kv("p99_ns", stats.residency_ns.quantile(0.99));
    w.kv("max_ns", stats.residency_ns.max());
    w.end_object();
  }
  w.end_array();

  if (!m.recovery.empty()) {
    w.key("recovery");
    w.begin_array();
    for (const auto& ev : m.recovery) {
      w.begin_object();
      w.kv("element", ev.element);
      w.kv("action", ev.action);
      w.kv("detected_ns", ev.detected_ns);
      w.kv("recovered_ns", ev.recovered_ns);
      w.kv("mttr_ns", ev.recovered_ns > ev.detected_ns
                          ? ev.recovered_ns - ev.detected_ns
                          : 0);
      w.kv("fault_window_drops", ev.fault_window_drops);
      w.kv("recovery_flush_drops", ev.recovery_flush_drops);
      w.kv("slo_violation_ns", ev.slo_violation_ns);
      w.kv("recovered", ev.recovered);
      w.key("replaced_chains");
      w.begin_array();
      for (const int c : ev.replaced_chains) w.value(c + 1);
      w.end_array();
      w.key("shed_chains");
      w.begin_array();
      for (const int c : ev.shed_chains) w.value(c + 1);
      w.end_array();
      w.end_object();
    }
    w.end_array();
  }

  w.key("trace_health");
  w.begin_object();
  w.kv("traces_observed", traces_.traces_observed());
  w.kv("continuity_errors", traces_.continuity_errors());
  w.kv("first_continuity_error", traces_.first_continuity_error());
  w.end_object();

  w.key("measured_profiles");
  w.raw(telemetry::to_json(measured_nf_profiles()));

  w.key("metrics");
  w.raw(metrics_.to_json());

  w.end_object();
  return w.str();
}

}  // namespace lemur::runtime
