#include "src/runtime/traffic.h"

#include <algorithm>
#include <set>

#include "src/metacompiler/p4_compose.h"

namespace lemur::runtime {
namespace {

// Default field values chosen to dodge every branch-condition value used
// by the canonical chains, so "bypass" paths stay on the bypass.
constexpr std::uint16_t kDefaultDstPort = 9999;
constexpr std::uint16_t kDefaultSrcPortBase = 20000;

}  // namespace

ChainTrafficModel::ChainTrafficModel(const chain::ChainSpec& spec,
                                     std::uint64_t seed, FlowMode mode,
                                     std::size_t frame_bytes)
    : aggregate_id_(spec.aggregate_id),
      frame_bytes_(frame_bytes),
      mode_(mode),
      rng_(seed) {
  // One template per linear path: fields satisfying that path's
  // conditions (edges taken) and avoiding conditions of edges not taken.
  double cumulative = 0;
  for (const auto& path : spec.graph.linear_paths()) {
    PathTemplate t;
    cumulative += path.fraction;
    t.cumulative = cumulative;
    std::set<int> on_path(path.nodes.begin(), path.nodes.end());
    for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
      // Find the edge taken from nodes[i] to nodes[i+1].
      for (const auto& e : spec.graph.edges()) {
        if (e.from != path.nodes[i] || e.to != path.nodes[i + 1]) continue;
        if (!e.condition) continue;
        const auto& cond = *e.condition;
        if (cond.field == "dst_port") {
          t.dst_port = static_cast<std::uint16_t>(cond.value);
        } else if (cond.field == "src_port") {
          t.src_port = static_cast<std::uint16_t>(cond.value);
        } else if (cond.field == "dscp") {
          t.dscp = static_cast<std::uint8_t>(cond.value);
        } else if (cond.field == "vlan_tag") {
          t.vlan = static_cast<std::uint16_t>(cond.value);
        }
      }
    }
    paths_.push_back(t);
  }
  if (paths_.empty()) {
    paths_.push_back(PathTemplate{1.0, {}, {}, {}, {}});
  }

  // Long-lived mode: pre-draw a pool of 40 flows (paper: 30-50).
  std::uniform_int_distribution<std::uint32_t> host(1, 0xfffe);
  for (int i = 0; i < 40; ++i) {
    net::FiveTuple flow;
    flow.src_ip.value =
        metacompiler::aggregate_prefix_value(aggregate_id_) | host(rng_);
    flow.dst_ip.value = 0x0a640000u | host(rng_);  // 10.100/16 service net.
    flow.src_port = static_cast<std::uint16_t>(kDefaultSrcPortBase + i);
    flow.proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
    long_lived_flows_.push_back(flow);
  }
}

const ChainTrafficModel::PathTemplate& ChainTrafficModel::sample_path() {
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const double u = uniform(rng_) *
                   (paths_.empty() ? 1.0 : paths_.back().cumulative);
  for (const auto& p : paths_) {
    if (u <= p.cumulative) return p;
  }
  return paths_.back();
}

net::Packet ChainTrafficModel::make_packet(std::uint64_t now_ns) {
  net::Packet pkt;
  make_packet_into(now_ns, pkt);
  return pkt;
}

void ChainTrafficModel::make_packet_into(std::uint64_t now_ns,
                                         net::Packet& pkt) {
  const PathTemplate& path = sample_path();
  ++packet_counter_;

  net::FiveTuple flow;
  if (mode_ == FlowMode::kLongLived) {
    flow = long_lived_flows_[packet_counter_ % long_lived_flows_.size()];
  } else {
    // High churn: a new flow every few packets.
    std::uniform_int_distribution<std::uint32_t> host(1, 0xfffe);
    flow.src_ip.value =
        metacompiler::aggregate_prefix_value(aggregate_id_) | host(rng_);
    flow.dst_ip.value = 0x0a640000u | host(rng_);
    flow.src_port = static_cast<std::uint16_t>(1024 + packet_counter_ % 50000);
    flow.proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
  }
  flow.dst_port = path.dst_port.value_or(kDefaultDstPort);
  if (path.src_port) flow.src_port = *path.src_port;

  builder_.five_tuple(flow)
      .aggregate_id(aggregate_id_)
      .arrival_ns(now_ns)
      .frame_size(frame_bytes_);
  // Incompressible pseudo-random payload: worst case for Dedup, exactly
  // like the paper's profiling traffic.
  payload_scratch_.resize(frame_bytes_ > 200 ? frame_bytes_ - 64 : 64);
  std::uint64_t state = packet_counter_ * 0x9e3779b97f4a7c15ull + 1;
  for (auto& b : payload_scratch_) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    b = static_cast<std::uint8_t>(state);
  }
  builder_.payload(payload_scratch_);
  builder_.build_into(pkt);
  if (path.vlan) net::push_vlan(pkt, *path.vlan);
  if (path.dscp) {
    const auto* layers = pkt.layers();
    if (layers != nullptr && layers->ipv4) {
      net::Ipv4Header ip = *layers->ipv4;
      ip.dscp = *path.dscp;
      net::patch_ipv4(pkt, *layers, ip);
    }
  }
}

RateShapedSource::RateShapedSource(ChainTrafficModel model, double gbps)
    : model_(std::move(model)), gbps_(gbps) {}

std::vector<net::Packet> RateShapedSource::emit_until(std::uint64_t now_ns,
                                                      std::size_t max) {
  std::vector<net::Packet> out;
  emit_until(now_ns, out, nullptr, max);
  return out;
}

std::size_t RateShapedSource::emit_until(std::uint64_t now_ns,
                                         std::vector<net::Packet>& out,
                                         net::PacketPool* pool,
                                         std::size_t max) {
  if (now_ns <= last_ns_) return 0;
  credit_bytes_ +=
      gbps_ * 1e9 / 8.0 * static_cast<double>(now_ns - last_ns_) * 1e-9;
  last_ns_ = now_ns;
  const double frame = static_cast<double>(model_.frame_bytes());
  std::size_t appended = 0;
  while (credit_bytes_ >= frame && appended < max) {
    credit_bytes_ -= frame;
    net::Packet pkt = pool != nullptr ? pool->acquire() : net::Packet{};
    model_.make_packet_into(now_ns, pkt);
    out.push_back(std::move(pkt));
    ++appended;
  }
  // Cap the backlog so a long idle gap cannot burst unboundedly later.
  credit_bytes_ = std::min(credit_bytes_, 64.0 * frame);
  return appended;
}

}  // namespace lemur::runtime
