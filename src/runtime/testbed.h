// The deployment engine: instantiates the metacompiler's artifacts onto
// the simulated rack (PISA ToR + BESS servers + SmartNICs + OpenFlow
// switch), injects rate-shaped chain traffic, and measures delivered
// throughput and latency — the "execute the NF chain configuration on
// the testbed" step of the paper's methodology (section 5.1).
//
// Packet transport model: all traffic transits the ToR. The switch
// pipeline (the real compiled P4 program) routes packets to server/OF
// ports or to network egress; servers run their BESS pipelines under
// per-core cycle accounting; each switch<->server hand-off costs the
// topology's bounce latency. SmartNICs sit in-line in front of their
// server and process NSH-tagged segments assigned to them.
//
// Telemetry: with tracing on (the default) every packet accumulates
// per-hop (platform, SPI/SI, enter/exit) records across the path;
// delivery folds them into per-segment latency attribution, per-chain
// latency histograms feed the SLO monitor, and every discarded packet is
// charged to a (chain, platform, cause) drop-ledger cell so that
//   offered == delivered + dropped + residual
// holds exactly per chain (residual = end-of-run queue residents).
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "src/bess/dataplane.h"
#include "src/bess/nsh_modules.h"
#include "src/net/pcap.h"
#include "src/metacompiler/metacompiler.h"
#include "src/nic/smartnic.h"
#include "src/openflow/of_switch.h"
#include "src/pisa/switch_sim.h"
#include "src/runtime/faults.h"
#include "src/runtime/traffic.h"
#include "src/telemetry/drops.h"
#include "src/telemetry/measured_profile.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/slo_monitor.h"
#include "src/telemetry/trace.h"

namespace lemur::runtime {

class Testbed;

/// One detected fault and what the recovery controller did about it.
/// All times are virtual nanoseconds; with a fixed seed the whole record
/// is bit-identical across runs.
struct RecoveryEvent {
  std::string element;  ///< "server1", "smartnic0", "openflow", "link0", ...
  std::string action;   ///< "replaced", "replaced+shed-chain-3",
                        ///< "impairment-ride-through", "unrecovered: ..."
  std::uint64_t detected_ns = 0;   ///< Telemetry spike observed.
  std::uint64_t recovered_ns = 0;  ///< New plan live (or give-up time).
  std::uint64_t fault_window_drops = 0;  ///< cause=fault drops attributed
                                         ///< to this element at recovery.
  std::uint64_t recovery_flush_drops = 0;  ///< In-flight flushed at swap.
  std::uint64_t slo_violation_ns = 0;  ///< detected->recovered window.
  bool recovered = false;
  std::vector<int> replaced_chains;  ///< Chains the new plan re-placed.
  std::vector<int> shed_chains;      ///< Chains admission-shed (degraded).
};

/// The Testbed consults this after every quantum; the recovery controller
/// implements it. Kept abstract so runtime/testbed does not depend on the
/// controller (which itself drives the placer + metacompiler).
class RecoveryHook {
 public:
  virtual ~RecoveryHook() = default;
  virtual void on_quantum(Testbed& testbed, std::uint64_t now_ns) = 0;
  [[nodiscard]] virtual std::vector<RecoveryEvent> events() const = 0;
};

struct Measurement {
  std::vector<double> chain_gbps;     ///< Delivered rate per chain.
  std::vector<double> chain_latency_us;  ///< Mean end-to-end latency.
  double aggregate_gbps = 0;
  std::uint64_t offered_packets = 0;  ///< Injected during the window.
  std::uint64_t delivered_packets = 0;
  /// Fabric drops: every drop-ledger cell except in-server ones
  /// (platform kServer), preserving the field's historical meaning.
  /// `drops` below carries the full attribution.
  std::uint64_t dropped_packets = 0;

  // Per-chain latency distribution (microseconds). The mean above hides
  // tail violations; SLO enforcement reads these.
  std::vector<double> chain_p50_us;
  std::vector<double> chain_p95_us;
  std::vector<double> chain_p99_us;
  std::vector<double> chain_max_us;

  // Exact per-chain packet conservation:
  //   chain_offered == chain_delivered + chain_dropped + chain_residual.
  std::vector<std::uint64_t> chain_offered;
  std::vector<std::uint64_t> chain_delivered;
  std::vector<std::uint64_t> chain_dropped;   ///< All causes/platforms.
  std::vector<std::uint64_t> chain_residual;  ///< Still queued at run end.

  /// Per-(chain, platform, cause) drop attribution.
  telemetry::DropLedger drops;
  /// SLO compliance judged against each chain's t_min/t_max/d_max.
  telemetry::SloReport slo;
  /// Total packets still queued (wire FIFOs, BESS queues, ToR backlog)
  /// when the run ended.
  std::uint64_t residual_queued = 0;

  /// Per-event recovery report (MTTR, failure-window loss, SLO-violation
  /// duration) when a RecoveryHook was attached; empty otherwise.
  std::vector<RecoveryEvent> recovery;

  /// Packets neither delivered nor counted as fabric drops: still queued
  /// at the end of the drain window, or consumed inside NF modules
  /// (ACL/Limiter/UrlFilter verdicts). Conservation: offered ==
  /// delivered + dropped + unaccounted().
  [[nodiscard]] std::uint64_t unaccounted() const {
    return offered_packets - delivered_packets - dropped_packets;
  }
};

class Testbed {
 public:
  /// Offered load defaults to each chain's LP-assigned rate plus 5%
  /// headroom — enough to reveal when actual capacity beats the Placer's
  /// conservative prediction, as in the paper's section 5.2.
  Testbed(const std::vector<chain::ChainSpec>& chains,
          const placer::PlacementResult& placement,
          const metacompiler::CompiledArtifacts& artifacts,
          const topo::Topology& topo, std::uint64_t seed = 7,
          FlowMode flow_mode = FlowMode::kLongLived);
  ~Testbed();

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Runs the measurement for `duration_ms` of virtual time.
  /// `offered_gbps` overrides the per-chain offered load; empty uses each
  /// chain's LP-assigned rate times `offered_headroom`.
  Measurement run(double duration_ms, double offered_headroom = 1.05,
                  const std::vector<double>& offered_gbps = {});

  [[nodiscard]] const pisa::PisaSwitch& tor() const { return *tor_; }

  /// Per-hop packet tracing (on by default). Off saves the per-hop
  /// record-keeping; drop attribution and latency histograms stay on.
  void set_tracing(bool enabled) { tracing_ = enabled; }
  [[nodiscard]] bool tracing() const { return tracing_; }

  /// Packet-buffer pooling (on by default): delivered/dropped packets
  /// return their frame buffers to an arena that injection re-uses, so
  /// steady state allocates nothing per packet. Off reverts to plain
  /// construct/destroy per packet (for A/B parity runs).
  void set_pooling(bool enabled) { pool_.set_enabled(enabled); }
  [[nodiscard]] const net::PacketPool& packet_pool() const { return pool_; }

  /// Keep every raw latency sample per chain (tests compare histogram
  /// quantiles against an exact sort). Off by default: unbounded memory.
  void set_record_raw_latencies(bool enabled) {
    record_raw_latencies_ = enabled;
  }
  [[nodiscard]] const std::vector<std::vector<std::uint64_t>>&
  raw_latencies_ns() const {
    return raw_latency_ns_;
  }

  /// Counters/gauges/histograms accumulated by the last run() (per-chain
  /// latency, per-platform queue occupancy series, ...).
  [[nodiscard]] const telemetry::MetricsRegistry& metrics() const {
    return metrics_;
  }
  /// Per-(chain, hop) residency statistics from the last run().
  [[nodiscard]] const telemetry::TraceAggregator& traces() const {
    return traces_;
  }

  /// Per-NF measured profiles (cycles actually charged per packet) from
  /// the last run() — comparable to placer::static_profile_table.
  [[nodiscard]] std::vector<telemetry::MeasuredNfProfile>
  measured_nf_profiles() const;

  /// Full telemetry snapshot of the last run() as a JSON document:
  /// measurement, SLO report, drop ledger, per-hop table, measured
  /// profiles, and the metrics registry.
  [[nodiscard]] std::string stats_json(const Measurement& m) const;

  /// Observation hook invoked for every packet delivered at network
  /// egress (tests use it to verify end-to-end packet transformations).
  void set_egress_hook(std::function<void(const net::Packet&)> hook) {
    egress_hook_ = std::move(hook);
  }

  /// Captures every egress packet to a pcap file (openable in Wireshark).
  /// Returns false if the file cannot be created.
  bool capture_egress_to(const std::string& path);

  // --- Fault injection & live recovery ------------------------------------

  /// Attaches a fault scheduler consulted every quantum (and per wire
  /// packet for impairments). Not owned; must outlive run().
  void set_fault_scheduler(FaultScheduler* faults) { faults_ = faults; }

  /// Attaches a recovery hook called after every quantum. Not owned.
  void set_recovery_hook(RecoveryHook* hook) { recovery_ = hook; }

  /// Atomically replaces the running plan mid-run: exports stateful NF
  /// state, flushes in-flight packets (charged cause=recovery-flush so
  /// conservation holds), rebuilds ToR/servers/NICs/OF from the new
  /// artifacts, and imports the state into the replacement instances.
  /// The new references must outlive the testbed. Runs the deployment
  /// verifier on the new plan first; returns false (and leaves the old
  /// plan running) on verification failure.
  bool swap_plan(const std::vector<chain::ChainSpec>& chains,
                 const placer::PlacementResult& placement,
                 const metacompiler::CompiledArtifacts& artifacts,
                 const topo::Topology& topo, std::uint64_t now_ns,
                 std::string* error = nullptr);

  /// Admission-shed a chain at the ToR: its packets still count as
  /// offered but are dropped on arrival with cause=admission-shed (the
  /// degradation ladder's explicit ledger trail).
  void set_chain_shed(int chain, bool shed);

  /// Drop ledger accumulated so far (the recovery controller's detection
  /// signal, live during run()).
  [[nodiscard]] const telemetry::DropLedger& drop_ledger() const {
    return drop_ledger_;
  }

  /// Packets flushed during swap_plan() calls so far.
  [[nodiscard]] std::uint64_t recovery_flush_drops() const {
    return recovery_flush_drops_;
  }

  /// Number of successful swap_plan() calls.
  [[nodiscard]] int plan_generation() const { return plan_generation_; }

  /// The plan currently live (post-swap these differ from the ctor args).
  [[nodiscard]] const placer::PlacementResult& placement() const {
    return *placement_;
  }
  [[nodiscard]] const topo::Topology& topology() const { return *topo_; }

  /// Per-(chain, node-id) state snapshots captured by the last
  /// swap_plan() (tests verify migrated NAT/LB/Monitor/Dedup state).
  [[nodiscard]] const std::map<std::pair<int, int>,
                               std::vector<std::uint8_t>>&
  last_exported_state() const {
    return exported_state_;
  }

  /// Read access to a server's dataplane (state-migration tests inspect
  /// NF modules); nullptr for out-of-range indices.
  [[nodiscard]] const bess::ServerDataplane* server_dataplane(int s) const {
    return s >= 0 && s < static_cast<int>(servers_.size())
               ? servers_[static_cast<std::size_t>(s)].dataplane.get()
               : nullptr;
  }

 private:
  struct Endpoint {
    placer::Target target = placer::Target::kServer;
    int server = 0;
  };

  class WireSource;
  class ReturnSink;

  struct ServerRt {
    std::unique_ptr<bess::ServerDataplane> dataplane;
    std::unique_ptr<WireSource> source;
    std::unique_ptr<ReturnSink> sink;
  };

  struct NicRt {
    std::unique_ptr<nic::SmartNic> device;
    std::vector<const metacompiler::NicArtifact*> artifacts;
    std::uint64_t engine_free_ns = 0;
    std::uint64_t packets = 0;  ///< Packets this testbed ran through it.
  };

  static std::uint64_t endpoint_key(std::uint32_t spi, std::uint8_t si) {
    return (static_cast<std::uint64_t>(spi) << 8) | si;
  }

  void build_endpoints();
  void build_tor();
  void build_servers(std::uint64_t seed);
  void build_nics();
  void build_openflow();
  /// Verifies the current plan and builds the whole rack; sets error_ on
  /// verifier errors. Shared by the ctor and swap_plan().
  void deploy();

  /// Marks newly-dead servers, flushing their wire FIFOs, queues, and
  /// sinks as cause=fault drops.
  void apply_fault_onsets(std::uint64_t now_ns);
  /// Flushes every in-flight packet on (live) server `s`, charging
  /// `cause`; `element` labels the per-element fault metrics counter
  /// (nullptr = no per-element counter).
  void flush_server(int s, telemetry::DropCause cause, const char* element);
  /// Drop charged to an injected fault: ledger cause=fault plus the
  /// per-element counter the controller uses to localize the failure.
  void count_fault_drop(const net::Packet& pkt, net::HopPlatform platform,
                        const std::string& element);
  void export_nf_state();
  void import_nf_state();

  void route_from_switch(net::Packet&& pkt, std::uint32_t egress_port,
                         std::uint64_t ready_ns);
  void deliver(net::Packet&& pkt, std::uint64_t ready_ns);
  /// Fault interception (death, link-down, wire impairments), then
  /// inject_server().
  void to_server(net::Packet&& pkt, int server, std::uint64_t ready_ns);
  /// The actual SmartNIC + wire-FIFO hand-off, past the fault checks.
  void inject_server(net::Packet&& pkt, int server, std::uint64_t ready_ns);
  void through_openflow(net::Packet&& pkt, std::uint64_t ready_ns);

  /// 0-based chain index for a packet's traffic aggregate.
  [[nodiscard]] int chain_of(std::uint32_t aggregate_id) const;
  void count_drop(const net::Packet& pkt, net::HopPlatform platform,
                  telemetry::DropCause cause);
  /// Appends a hop ending at `exit_ns`; the hop starts where the previous
  /// one ended (or at arrival), so traces tile by construction.
  void append_hop(net::Packet& pkt, net::HopPlatform platform,
                  std::uint16_t id, std::uint64_t exit_ns);
  /// Opens a server hop (exit filled by the ReturnSink on egress).
  /// `spi`/`si` label the segment being entered; 0 means "reuse the
  /// previous hop's coordinates".
  void open_server_hop(net::Packet& pkt, int server, std::uint32_t spi = 0,
                       std::uint8_t si = 0);
  void sweep_module_drops();
  void sweep_residuals(Measurement& out);
  void sample_queue_depths();

  // Pointers (not references) so swap_plan() can repoint the live plan.
  const std::vector<chain::ChainSpec>* chains_;
  const placer::PlacementResult* placement_;
  const metacompiler::CompiledArtifacts* artifacts_;
  const topo::Topology* topo_;
  FlowMode flow_mode_;
  std::uint64_t seed_;
  std::string error_;

  FaultScheduler* faults_ = nullptr;
  RecoveryHook* recovery_ = nullptr;
  std::vector<char> server_dead_;  ///< Onset already applied (flushed).
  std::vector<char> shed_;         ///< Admission-shed chains.
  std::map<std::pair<int, int>, std::vector<std::uint8_t>> exported_state_;
  std::uint64_t recovery_flush_drops_ = 0;
  int plan_generation_ = 0;

  /// Declared before the runtimes that hold pointers into it.
  net::PacketPool pool_;

  std::map<std::uint64_t, Endpoint> endpoints_;
  std::unique_ptr<pisa::PisaSwitch> tor_;
  std::vector<ServerRt> servers_;
  std::map<int, NicRt> nics_;  ///< Keyed by attached server.
  std::unique_ptr<openflow::OpenFlowSwitch> of_switch_;
  metacompiler::SegmentIndex segment_index_;

  std::deque<std::pair<std::uint64_t, net::Packet>> to_switch_;
  std::function<void(const net::Packet&)> egress_hook_;
  std::unique_ptr<net::PcapWriter> egress_capture_;

  // Measurement accumulators.
  std::vector<std::uint64_t> delivered_bytes_;
  std::vector<std::uint64_t> latency_sum_ns_;
  std::vector<std::uint64_t> delivered_packets_;
  std::vector<std::uint64_t> offered_packets_;
  std::vector<std::uint64_t> offered_bytes_;
  std::vector<telemetry::LatencyHistogram> latency_ns_;
  std::vector<std::vector<std::uint64_t>> raw_latency_ns_;
  telemetry::DropLedger drop_ledger_;
  telemetry::TraceAggregator traces_;
  telemetry::MetricsRegistry metrics_;
  bool tracing_ = true;
  bool record_raw_latencies_ = false;
};

}  // namespace lemur::runtime
