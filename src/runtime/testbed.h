// The deployment engine: instantiates the metacompiler's artifacts onto
// the simulated rack (PISA ToR + BESS servers + SmartNICs + OpenFlow
// switch), injects rate-shaped chain traffic, and measures delivered
// throughput and latency — the "execute the NF chain configuration on
// the testbed" step of the paper's methodology (section 5.1).
//
// Packet transport model: all traffic transits the ToR. The switch
// pipeline (the real compiled P4 program) routes packets to server/OF
// ports or to network egress; servers run their BESS pipelines under
// per-core cycle accounting; each switch<->server hand-off costs the
// topology's bounce latency. SmartNICs sit in-line in front of their
// server and process NSH-tagged segments assigned to them.
//
// Telemetry: with tracing on (the default) every packet accumulates
// per-hop (platform, SPI/SI, enter/exit) records across the path;
// delivery folds them into per-segment latency attribution, per-chain
// latency histograms feed the SLO monitor, and every discarded packet is
// charged to a (chain, platform, cause) drop-ledger cell so that
//   offered == delivered + dropped + residual
// holds exactly per chain (residual = end-of-run queue residents).
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "src/bess/dataplane.h"
#include "src/bess/nsh_modules.h"
#include "src/net/pcap.h"
#include "src/metacompiler/metacompiler.h"
#include "src/nic/smartnic.h"
#include "src/openflow/of_switch.h"
#include "src/pisa/switch_sim.h"
#include "src/runtime/traffic.h"
#include "src/telemetry/drops.h"
#include "src/telemetry/measured_profile.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/slo_monitor.h"
#include "src/telemetry/trace.h"

namespace lemur::runtime {

struct Measurement {
  std::vector<double> chain_gbps;     ///< Delivered rate per chain.
  std::vector<double> chain_latency_us;  ///< Mean end-to-end latency.
  double aggregate_gbps = 0;
  std::uint64_t offered_packets = 0;  ///< Injected during the window.
  std::uint64_t delivered_packets = 0;
  /// Fabric drops: every drop-ledger cell except in-server ones
  /// (platform kServer), preserving the field's historical meaning.
  /// `drops` below carries the full attribution.
  std::uint64_t dropped_packets = 0;

  // Per-chain latency distribution (microseconds). The mean above hides
  // tail violations; SLO enforcement reads these.
  std::vector<double> chain_p50_us;
  std::vector<double> chain_p95_us;
  std::vector<double> chain_p99_us;
  std::vector<double> chain_max_us;

  // Exact per-chain packet conservation:
  //   chain_offered == chain_delivered + chain_dropped + chain_residual.
  std::vector<std::uint64_t> chain_offered;
  std::vector<std::uint64_t> chain_delivered;
  std::vector<std::uint64_t> chain_dropped;   ///< All causes/platforms.
  std::vector<std::uint64_t> chain_residual;  ///< Still queued at run end.

  /// Per-(chain, platform, cause) drop attribution.
  telemetry::DropLedger drops;
  /// SLO compliance judged against each chain's t_min/t_max/d_max.
  telemetry::SloReport slo;
  /// Total packets still queued (wire FIFOs, BESS queues, ToR backlog)
  /// when the run ended.
  std::uint64_t residual_queued = 0;

  /// Packets neither delivered nor counted as fabric drops: still queued
  /// at the end of the drain window, or consumed inside NF modules
  /// (ACL/Limiter/UrlFilter verdicts). Conservation: offered ==
  /// delivered + dropped + unaccounted().
  [[nodiscard]] std::uint64_t unaccounted() const {
    return offered_packets - delivered_packets - dropped_packets;
  }
};

class Testbed {
 public:
  /// Offered load defaults to each chain's LP-assigned rate plus 5%
  /// headroom — enough to reveal when actual capacity beats the Placer's
  /// conservative prediction, as in the paper's section 5.2.
  Testbed(const std::vector<chain::ChainSpec>& chains,
          const placer::PlacementResult& placement,
          const metacompiler::CompiledArtifacts& artifacts,
          const topo::Topology& topo, std::uint64_t seed = 7,
          FlowMode flow_mode = FlowMode::kLongLived);
  ~Testbed();

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Runs the measurement for `duration_ms` of virtual time.
  /// `offered_gbps` overrides the per-chain offered load; empty uses each
  /// chain's LP-assigned rate times `offered_headroom`.
  Measurement run(double duration_ms, double offered_headroom = 1.05,
                  const std::vector<double>& offered_gbps = {});

  [[nodiscard]] const pisa::PisaSwitch& tor() const { return *tor_; }

  /// Per-hop packet tracing (on by default). Off saves the per-hop
  /// record-keeping; drop attribution and latency histograms stay on.
  void set_tracing(bool enabled) { tracing_ = enabled; }
  [[nodiscard]] bool tracing() const { return tracing_; }

  /// Packet-buffer pooling (on by default): delivered/dropped packets
  /// return their frame buffers to an arena that injection re-uses, so
  /// steady state allocates nothing per packet. Off reverts to plain
  /// construct/destroy per packet (for A/B parity runs).
  void set_pooling(bool enabled) { pool_.set_enabled(enabled); }
  [[nodiscard]] const net::PacketPool& packet_pool() const { return pool_; }

  /// Keep every raw latency sample per chain (tests compare histogram
  /// quantiles against an exact sort). Off by default: unbounded memory.
  void set_record_raw_latencies(bool enabled) {
    record_raw_latencies_ = enabled;
  }
  [[nodiscard]] const std::vector<std::vector<std::uint64_t>>&
  raw_latencies_ns() const {
    return raw_latency_ns_;
  }

  /// Counters/gauges/histograms accumulated by the last run() (per-chain
  /// latency, per-platform queue occupancy series, ...).
  [[nodiscard]] const telemetry::MetricsRegistry& metrics() const {
    return metrics_;
  }
  /// Per-(chain, hop) residency statistics from the last run().
  [[nodiscard]] const telemetry::TraceAggregator& traces() const {
    return traces_;
  }

  /// Per-NF measured profiles (cycles actually charged per packet) from
  /// the last run() — comparable to placer::static_profile_table.
  [[nodiscard]] std::vector<telemetry::MeasuredNfProfile>
  measured_nf_profiles() const;

  /// Full telemetry snapshot of the last run() as a JSON document:
  /// measurement, SLO report, drop ledger, per-hop table, measured
  /// profiles, and the metrics registry.
  [[nodiscard]] std::string stats_json(const Measurement& m) const;

  /// Observation hook invoked for every packet delivered at network
  /// egress (tests use it to verify end-to-end packet transformations).
  void set_egress_hook(std::function<void(const net::Packet&)> hook) {
    egress_hook_ = std::move(hook);
  }

  /// Captures every egress packet to a pcap file (openable in Wireshark).
  /// Returns false if the file cannot be created.
  bool capture_egress_to(const std::string& path);

 private:
  struct Endpoint {
    placer::Target target = placer::Target::kServer;
    int server = 0;
  };

  class WireSource;
  class ReturnSink;

  struct ServerRt {
    std::unique_ptr<bess::ServerDataplane> dataplane;
    std::unique_ptr<WireSource> source;
    std::unique_ptr<ReturnSink> sink;
  };

  struct NicRt {
    std::unique_ptr<nic::SmartNic> device;
    std::vector<const metacompiler::NicArtifact*> artifacts;
    std::uint64_t engine_free_ns = 0;
    std::uint64_t packets = 0;  ///< Packets this testbed ran through it.
  };

  static std::uint64_t endpoint_key(std::uint32_t spi, std::uint8_t si) {
    return (static_cast<std::uint64_t>(spi) << 8) | si;
  }

  void build_endpoints();
  void build_tor();
  void build_servers(std::uint64_t seed);
  void build_nics();
  void build_openflow();

  void route_from_switch(net::Packet&& pkt, std::uint32_t egress_port,
                         std::uint64_t ready_ns);
  void deliver(net::Packet&& pkt, std::uint64_t ready_ns);
  void to_server(net::Packet&& pkt, int server, std::uint64_t ready_ns);
  void through_openflow(net::Packet&& pkt, std::uint64_t ready_ns);

  /// 0-based chain index for a packet's traffic aggregate.
  [[nodiscard]] int chain_of(std::uint32_t aggregate_id) const;
  void count_drop(const net::Packet& pkt, net::HopPlatform platform,
                  telemetry::DropCause cause);
  /// Appends a hop ending at `exit_ns`; the hop starts where the previous
  /// one ended (or at arrival), so traces tile by construction.
  void append_hop(net::Packet& pkt, net::HopPlatform platform,
                  std::uint16_t id, std::uint64_t exit_ns);
  /// Opens a server hop (exit filled by the ReturnSink on egress).
  /// `spi`/`si` label the segment being entered; 0 means "reuse the
  /// previous hop's coordinates".
  void open_server_hop(net::Packet& pkt, int server, std::uint32_t spi = 0,
                       std::uint8_t si = 0);
  void sweep_module_drops();
  void sweep_residuals(Measurement& out);
  void sample_queue_depths();

  const std::vector<chain::ChainSpec>& chains_;
  const placer::PlacementResult& placement_;
  const metacompiler::CompiledArtifacts& artifacts_;
  const topo::Topology& topo_;
  FlowMode flow_mode_;
  std::uint64_t seed_;
  std::string error_;

  /// Declared before the runtimes that hold pointers into it.
  net::PacketPool pool_;

  std::map<std::uint64_t, Endpoint> endpoints_;
  std::unique_ptr<pisa::PisaSwitch> tor_;
  std::vector<ServerRt> servers_;
  std::map<int, NicRt> nics_;  ///< Keyed by attached server.
  std::unique_ptr<openflow::OpenFlowSwitch> of_switch_;
  metacompiler::SegmentIndex segment_index_;

  std::deque<std::pair<std::uint64_t, net::Packet>> to_switch_;
  std::function<void(const net::Packet&)> egress_hook_;
  std::unique_ptr<net::PcapWriter> egress_capture_;

  // Measurement accumulators.
  std::vector<std::uint64_t> delivered_bytes_;
  std::vector<std::uint64_t> latency_sum_ns_;
  std::vector<std::uint64_t> delivered_packets_;
  std::vector<std::uint64_t> offered_packets_;
  std::vector<std::uint64_t> offered_bytes_;
  std::vector<telemetry::LatencyHistogram> latency_ns_;
  std::vector<std::vector<std::uint64_t>> raw_latency_ns_;
  telemetry::DropLedger drop_ledger_;
  telemetry::TraceAggregator traces_;
  telemetry::MetricsRegistry metrics_;
  bool tracing_ = true;
  bool record_raw_latencies_ = false;
};

}  // namespace lemur::runtime
