#!/usr/bin/env bash
# CI entry point: build + test twice — a normal RelWithDebInfo build and
# an ASan/UBSan build (-DLEMUR_SANITIZE="address;undefined") — failing on
# any compiler warning in either. src/verify additionally builds with
# -Werror (see src/verify/CMakeLists.txt).
#
# Builds go into a throwaway temp directory (removed on exit) so CI never
# pollutes the work tree or reuses a stale cache; set LEMUR_CI_KEEP=1 to
# keep it for debugging.
#
# Usage: ./ci.sh [jobs]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")" && pwd)"
jobs="${1:-$(nproc)}"

ci_root="$(mktemp -d -t lemur-ci.XXXXXX)"
cleanup() {
  if [[ "${LEMUR_CI_KEEP:-0}" == "1" ]]; then
    echo "==== keeping build trees in $ci_root ===="
  else
    rm -rf "$ci_root"
  fi
}
trap cleanup EXIT

run_config() {
  local name="$1" build_dir="$2"
  shift 2
  echo "==== [$name] configure ===="
  cmake -B "$build_dir" -S "$repo_root" "$@"
  echo "==== [$name] build ===="
  local log
  log="$(mktemp)"
  if ! cmake --build "$build_dir" -j "$jobs" 2>&1 | tee "$log"; then
    rm -f "$log"
    echo "==== [$name] BUILD FAILED ===="
    return 1
  fi
  if grep -E "warning:" "$log" >/dev/null; then
    echo "==== [$name] FAILED: compiler warnings ===="
    grep -E "warning:" "$log"
    rm -f "$log"
    return 1
  fi
  rm -f "$log"
  echo "==== [$name] ctest ===="
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

run_config normal "$ci_root/build"

# Telemetry smoke: fig2 workload with tracing on/off. Fails on broken
# packet conservation, trace-continuity errors, or >10% tracing
# overhead; leaves BENCH_telemetry.json next to the build tree.
echo "==== [normal] telemetry smoke ===="
(cd "$ci_root/build" && ./bench/telemetry_smoke)

# Dataplane fast path: pooled vs unpooled pps, parse-once on/off, flat vs
# std flow tables. Fails on conservation/parity breakage, or when pooled
# pps regresses >10% below the committed BENCH_dataplane.json baseline.
echo "==== [normal] dataplane micro ===="
(cd "$ci_root/build" &&
 ./bench/dataplane_micro --baseline "$repo_root/BENCH_dataplane.json")

# Failover MTTR sweep: every chaos fault type must detect, re-place (or
# ride through), migrate state, and swap, with exact conservation and
# recovered throughput within 1% of a cold re-place; the worst MTTR is
# gated against the committed BENCH_failover.json baseline.
echo "==== [normal] failover mttr ===="
(cd "$ci_root/build" &&
 ./bench/failover_mttr --baseline "$repo_root/BENCH_failover.json")

# Chaos smoke: fixed-seed fault spec through the CLI; exit 1 on any
# unrecovered fault or per-chain conservation mismatch.
echo "==== [normal] chaos smoke ===="
(cd "$ci_root/build" &&
 ./tools/lemur_cli chaos --chain 3 --chain 5 --servers 2 --cores 8 \
   --seed 42 --faults "server:1@2;corrupt:0@1+1@0.25" \
   --json chaos_smoke.json)

run_config sanitize "$ci_root/build-sanitize" \
  -DLEMUR_SANITIZE="address;undefined"

echo "==== CI OK: both configurations green ===="
