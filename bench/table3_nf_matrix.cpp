// Table 3 reproduction: the NF library and its per-platform placement
// choices, verified against the registry and the actual code generators.
#include <cstdio>

#include "src/nf/ebpf/ebpf_nfs.h"
#include "src/nf/p4/p4_nfs.h"
#include "src/openflow/of_nfs.h"

int main() {
  using namespace lemur;
  std::printf("Lemur reproduction — Table 3: NFs and available placement "
              "choices\n\n");
  std::printf("%-14s %-22s %5s %4s %6s %4s %6s %6s\n", "NF", "Spec", "C++",
              "P4", "eBPF", "OF", "state", "repl");
  for (const auto& spec : nf::all_nf_specs()) {
    // Cross-check the registry columns against the real generators.
    nf::NfConfig config;
    const bool p4_gen = nf::p4::make_p4_nf(spec.type, config).has_value();
    const bool ebpf_gen = nf::ebpf::generate(spec.type, config).has_value();
    const bool of_gen = openflow::table_of(spec.type).has_value();
    const char* check =
        (p4_gen == spec.has_p4 && ebpf_gen == spec.has_ebpf &&
         of_gen == spec.has_openflow)
            ? ""
            : "  <-- generator/registry mismatch!";
    std::printf("%-14s %-22s %5s %4s %6s %4s %6s %6s%s\n",
                std::string(spec.name).c_str(),
                std::string(spec.description).c_str(),
                spec.has_cpp ? "x" : "", spec.has_p4 ? "x" : "",
                spec.has_ebpf ? "x" : "", spec.has_openflow ? "x" : "",
                spec.stateful ? "yes" : "", spec.replicable ? "yes" : "NO",
                check);
  }
  std::printf(
      "\nNotes: IPv4Fwd is artificially limited to P4-only in the Figure 2 "
      "evaluation\n(Table 3 footnote); Limiter and Monitor (repl = NO) can "
      "never be replicated\nacross cores (Table 3 bold).\n");
  return 0;
}
