// Shared experiment harness for the reproduction benches: chain-set
// construction with delta-scaled SLOs (paper section 5.1), placement +
// metacompilation + testbed measurement, and paper-style table printing.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/metacompiler/pisa_oracle.h"
#include "src/placer/placer.h"
#include "src/runtime/testbed.h"

namespace lemur::bench {

inline std::vector<chain::ChainSpec> chain_set(
    const std::vector<int>& numbers, double delta,
    const topo::Topology& topo, const placer::PlacerOptions& options) {
  auto specs = chain::canonical_chains(numbers);
  placer::apply_delta(specs, delta, topo.servers.front(), options);
  return specs;
}

struct ExperimentRow {
  placer::Strategy strategy = placer::Strategy::kLemur;
  bool feasible = false;
  double predicted_gbps = 0;   ///< Placer aggregate (the paper's diamond).
  double measured_gbps = -1;   ///< Testbed aggregate (-1 = not executed).
  double marginal_gbps = 0;
  double t_min_gbps = 0;
  double placement_seconds = 0;
  int bounces = 0;
  std::string note;
};

/// Places (and optionally executes) one strategy on one chain set.
inline ExperimentRow run_strategy(placer::Strategy strategy,
                                  const std::vector<chain::ChainSpec>& chains,
                                  const topo::Topology& topo,
                                  const placer::PlacerOptions& options,
                                  bool execute, double duration_ms = 5.0) {
  metacompiler::CompilerOracle oracle(topo);
  ExperimentRow row;
  row.strategy = strategy;
  auto placement = placer::place(strategy, chains, topo, options, oracle);
  row.feasible = placement.feasible;
  row.t_min_gbps = placement.aggregate_t_min_gbps;
  row.placement_seconds = placement.placement_seconds;
  if (!placement.feasible) {
    row.note = placement.infeasible_reason;
    return row;
  }
  row.predicted_gbps = placement.aggregate_gbps;
  row.marginal_gbps = placement.marginal_gbps();
  for (const auto& c : placement.chains) {
    row.bounces += c.bounces;
  }
  if (execute) {
    auto artifacts = metacompiler::compile(chains, placement, topo);
    if (artifacts.ok) {
      runtime::Testbed testbed(chains, placement, artifacts, topo);
      if (testbed.ok()) {
        auto m = testbed.run(duration_ms);
        row.measured_gbps = m.aggregate_gbps;
      } else {
        row.note = testbed.error();
      }
    } else {
      row.note = artifacts.error;
    }
  }
  return row;
}

inline const std::vector<placer::Strategy>& comparison_strategies() {
  static const std::vector<placer::Strategy> strategies = {
      placer::Strategy::kLemur,         placer::Strategy::kOptimal,
      placer::Strategy::kHwPreferred,   placer::Strategy::kSwPreferred,
      placer::Strategy::kMinimumBounce, placer::Strategy::kGreedy};
  return strategies;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// "12.34" or "-" for infeasible / unmeasured values.
inline std::string cell(double value, bool valid) {
  if (!valid) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", value);
  return buf;
}

}  // namespace lemur::bench
