// "An extreme configuration: P4 stage constraints" (section 5.2): the
// chain BPF -> 11x NAT (branched) -> IPv4Fwd at delta 0.5 (the paper's
// expected minimum rate: ~44.9 Gbps) runs the switch out of stages. Each
// carrier-grade NAT carries the full port space (65000 reverse-mapping
// entries), so its tables dominate a stage's SRAM. The paper: SW
// Preferred misses the SLO (the 40G server link cannot carry t_min);
// every hardware-first alternative exceeds the stage budget; only Lemur
// splits the NATs between the switch and the server.
//
// It also contrasts stage estimates: a naive per-table chain (paper: 27),
// a dependency-aware analysis without branch-exclusivity knowledge (the
// conservative Sonata-style estimate, paper: 14), and the platform
// compiler's packing with the metacompiler's exclusivity annotations
// (paper: 12).
#include "bench/common.h"

#include "src/chain/parser.h"
#include "src/pisa/compiler.h"

namespace {

using namespace lemur;

chain::ChainSpec extreme_chain(int nats) {
  std::string source = "BPF -> [";
  char frac[16];
  std::snprintf(frac, sizeof(frac), "%.4f", 1.0 / nats);
  for (int i = 0; i < nats; ++i) {
    source += (i > 0 ? std::string(", ") : std::string()) +
              "{'dst_port': " + std::to_string(1000 + i) + ", 'frac': " +
              frac + ", NAT(entries=65000)}";
  }
  source += "] -> IPv4Fwd";
  auto parsed = chain::parse_chain(source);
  chain::ChainSpec spec;
  spec.name = std::to_string(nats) + "-NAT chain";
  spec.graph = std::move(parsed.graph);
  // The paper's expected minimum rate for this configuration.
  spec.slo = chain::Slo::elastic_pipe(44.9, 100);
  spec.aggregate_id = 1;
  return spec;
}

pisa::P4Program all_switch_program(const chain::ChainSpec& spec,
                                   const topo::Topology& topo) {
  placer::Pattern pattern(spec.graph.nodes().size());
  for (auto& p : pattern) p.target = placer::Target::kPisa;
  std::vector<metacompiler::ChainRouting> routings = {
      metacompiler::build_routing(spec, pattern, 0)};
  metacompiler::PortMap ports;
  auto artifact =
      metacompiler::compose_p4({spec}, routings, {}, topo, ports);
  return artifact.program;
}

}  // namespace

int main() {
  const topo::Topology topo = topo::Topology::lemur_testbed();
  placer::PlacerOptions options;

  std::printf("Lemur reproduction — extreme P4 stage configuration "
              "(section 5.2)\n");

  bench::print_header("Stage estimates, BPF -> N x NAT -> IPv4Fwd fully "
                      "on the switch");
  std::printf("%-6s %18s %24s %18s\n", "NATs", "naive (paper 27)",
              "conservative (paper 14)", "compiler (paper 12)");
  for (int nats : {9, 10, 11}) {
    auto spec = extreme_chain(nats);
    auto program = all_switch_program(spec, topo);
    const int naive = pisa::estimate_stages_conservative(program);
    const auto conservative =
        pisa::compile(program, topo.tor, /*exclusivity_aware=*/false);
    const auto compiled = pisa::compile(program, topo.tor);
    std::printf("%-6d %18d %24d %15d %s\n", nats, naive,
                conservative.stages_required, compiled.stages_required,
                compiled.ok ? "(fits)" : "(overflow)");
  }

  bench::print_header(
      "Placement of the 11-NAT chain, t_min = 44.9 Gbps (delta 0.5)");
  auto spec = extreme_chain(11);
  std::vector<chain::ChainSpec> chains = {spec};
  std::printf("%-14s %10s %12s   %s\n", "strategy", "feasible",
              "predicted", "switch NATs / note");
  for (auto strategy : bench::comparison_strategies()) {
    metacompiler::CompilerOracle oracle(topo);
    auto placement =
        placer::place(strategy, chains, topo, options, oracle);
    int switch_nats = 0;
    if (placement.feasible) {
      for (const auto& n : chains[0].graph.nodes()) {
        if (n.type == nf::NfType::kNat &&
            placement.chains[0].nodes[static_cast<std::size_t>(n.id)]
                    .target == placer::Target::kPisa) {
          ++switch_nats;
        }
      }
    }
    std::printf("%-14s %10s %12s   ", placer::to_string(strategy),
                placement.feasible ? "yes" : "no",
                bench::cell(placement.aggregate_gbps, placement.feasible)
                    .c_str());
    if (placement.feasible) {
      std::printf("%d of 11 NATs on the switch (paper: 10)\n",
                  switch_nats);
    } else {
      std::printf("%.60s\n", placement.infeasible_reason.c_str());
    }
  }
  std::printf(
      "\nExpected shape: naive > conservative > compiler stage counts; "
      "the 11-NAT\nprogram overflows while fewer NATs fit; only "
      "Lemur/Optimal find a feasible\nsplit (most NATs on the switch, the "
      "rest on the server), SW Preferred's 40G\nlink cannot carry t_min, "
      "and hardware-first strategies overflow the stages.\n");
  return 0;
}
