// Figure 3a reproduction: placement across multiple servers. Chains
// {1,2,3} on (a) one 8-core server and (b) two 8-core servers. The paper:
// at delta 0.5 the single server delivers less than half the aggregate of
// two servers, and at delta 1.5 the single-server case becomes infeasible
// (the Dedup->ACL->Limiter subgroup must be split and replicated, running
// the single server out of cores).
#include "bench/common.h"

int main() {
  using namespace lemur;
  placer::PlacerOptions options;

  std::printf("Lemur reproduction — Figure 3a: one vs two 8-core servers, "
              "chains {1,2,3}\n");
  bench::print_header("Figure 3a");
  std::printf("%-6s %-10s %14s %14s %14s\n", "delta", "servers", "t_min",
              "predicted", "measured");

  for (double delta : {0.5, 1.0, 1.5}) {
    for (int servers : {1, 2}) {
      const topo::Topology topo = topo::Topology::multi_server(servers, 8);
      auto chains = bench::chain_set({1, 2, 3}, delta, topo, options);
      auto row = bench::run_strategy(placer::Strategy::kLemur, chains, topo,
                                     options, /*execute=*/true, 5.0);
      std::printf("%-6.1f %-10d %14.2f %14s %14s\n", delta, servers,
                  row.t_min_gbps,
                  bench::cell(row.predicted_gbps, row.feasible).c_str(),
                  bench::cell(row.measured_gbps,
                              row.feasible && row.measured_gbps >= 0)
                      .c_str());
    }
  }
  std::printf(
      "\nExpected shape: two servers deliver >= 2x the single server at "
      "low delta;\nthe single-server case drops out at higher delta "
      "(section 5.3).\n");
  return 0;
}
