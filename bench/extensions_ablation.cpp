// Ablations for the future-work extensions the paper defers and this
// reproduction implements (DESIGN.md "extensions"):
//   - NAT replication by port-space partitioning (section 3.2),
//   - Metron-style switch-to-core steering, removing the shared demux
//     core and the 180-cycle steering cost (sections 3.2/4.2),
//   - alternative rate-allocation objectives (footnote 2).
#include "bench/common.h"

#include "src/chain/parser.h"

namespace {

using namespace lemur;

chain::ChainSpec parse_spec(const std::string& source, double t_min,
                            std::uint32_t aggregate, double weight = 1.0) {
  auto parsed = chain::parse_chain(source);
  chain::ChainSpec spec;
  spec.name = "chain-" + std::to_string(aggregate);
  spec.graph = std::move(parsed.graph);
  spec.slo = chain::Slo::elastic_pipe(t_min, 100);
  spec.aggregate_id = aggregate;
  spec.weight = weight;
  return spec;
}

}  // namespace

int main() {
  using namespace lemur;
  std::printf("Lemur reproduction — future-work extension ablations\n");

  // --- NAT port-space partitioning ------------------------------------------
  {
    bench::print_header("NAT replication by port partitioning "
                        "(Encrypt -> NAT -> Tunnel, server-bound)");
    topo::Topology topo = topo::Topology::lemur_testbed();
    std::printf("%-26s %12s %12s\n", "variant", "predicted", "measured");
    for (bool partition : {false, true}) {
      placer::PlacerOptions options;
      options.disable_pisa_nfs = true;  // Keep the NAT on the server.
      options.restrict_ipv4fwd_to_p4 = false;
      options.replicate_nat_by_port_partition = partition;
      std::vector<chain::ChainSpec> chains = {
          parse_spec("Encrypt -> NAT -> Tunnel", 0.5, 1)};
      auto row = bench::run_strategy(placer::Strategy::kLemur, chains, topo,
                                     options, /*execute=*/true, 5.0);
      std::printf("%-26s %12s %12s\n",
                  partition ? "partitioned (replicable)" : "paper default",
                  bench::cell(row.predicted_gbps, row.feasible).c_str(),
                  bench::cell(row.measured_gbps,
                              row.feasible && row.measured_gbps >= 0)
                      .c_str());
    }
  }

  // --- Metron-style core steering --------------------------------------------
  {
    bench::print_header("Metron-style switch-to-core steering "
                        "(4 Encrypt chains on a 4-core server)");
    topo::Topology topo = topo::Topology::multi_server(1, 4);
    std::printf("%-26s %10s %12s\n", "variant", "feasible", "predicted");
    for (bool metron : {false, true}) {
      placer::PlacerOptions options;
      options.metron_core_steering = metron;
      std::vector<chain::ChainSpec> chains;
      for (int i = 0; i < 4; ++i) {
        chains.push_back(parse_spec("Encrypt", 2.0,
                                    static_cast<std::uint32_t>(i + 1)));
      }
      auto row = bench::run_strategy(placer::Strategy::kLemur, chains, topo,
                                     options, /*execute=*/false);
      std::printf("%-26s %10s %12s\n",
                  metron ? "switch-steered queues" : "shared demux core",
                  row.feasible ? "yes" : "no",
                  bench::cell(row.predicted_gbps, row.feasible).c_str());
    }
  }

  // --- Rate-allocation objectives --------------------------------------------
  {
    bench::print_header("Rate-allocation objectives (two cheap chains on "
                        "one 40G link, weights 10:1)");
    topo::Topology topo = topo::Topology::lemur_testbed();
    std::printf("%-16s %12s %12s %12s\n", "objective", "chain-1",
                "chain-2", "aggregate");
    const placer::PlacerOptions::Objective objectives[] = {
        placer::PlacerOptions::Objective::kMaxMarginal,
        placer::PlacerOptions::Objective::kWeighted,
        placer::PlacerOptions::Objective::kMaxMin};
    const char* names[] = {"max-marginal", "weighted", "max-min"};
    for (int i = 0; i < 3; ++i) {
      placer::PlacerOptions options;
      options.objective = objectives[i];
      // Server-bound cheap chains so the 40G link is the contended
      // resource the objective divides.
      options.disable_pisa_nfs = true;
      options.restrict_ipv4fwd_to_p4 = false;
      std::vector<chain::ChainSpec> chains = {
          parse_spec("Tunnel -> IPv4Fwd", 1.0, 1, 10.0),
          parse_spec("Detunnel -> IPv4Fwd", 1.0, 2, 1.0)};
      metacompiler::CompilerOracle oracle(topo);
      auto placement = placer::place(placer::Strategy::kLemur, chains, topo,
                                     options, oracle);
      if (!placement.feasible) {
        std::printf("%-16s infeasible: %s\n", names[i],
                    placement.infeasible_reason.c_str());
        continue;
      }
      std::printf("%-16s %12.2f %12.2f %12.2f\n", names[i],
                  placement.chains[0].assigned_gbps,
                  placement.chains[1].assigned_gbps,
                  placement.aggregate_gbps);
    }
  }

  std::printf(
      "\nExpected shapes: partitioning unlocks NAT scale-out (higher "
      "rate); Metron\nsteering turns an infeasible core budget feasible; "
      "weighted shifts marginal\nrate to the heavy chain while max-min "
      "equalizes marginals.\n");
  return 0;
}
