// NF microbenchmarks (google-benchmark): real wall-clock packet
// processing throughput of the software NF implementations and the eBPF
// interpreter. These are sanity/quality benchmarks for the simulator
// itself (the paper's rates come from the cycle model, not wall-clock).
#include <benchmark/benchmark.h>

#include "src/net/packet_builder.h"
#include "src/nf/ebpf/ebpf_nfs.h"
#include "src/nf/software/factory.h"
#include "src/nic/interpreter.h"
#include "src/nic/verifier.h"

namespace {

using namespace lemur;

net::Packet payload_packet(std::size_t frame = 1500) {
  return net::PacketBuilder().frame_size(frame).build();
}

void BM_SoftwareNf(benchmark::State& state) {
  const auto type = static_cast<nf::NfType>(state.range(0));
  auto impl = nf::make_software_nf(type, nf::NfConfig{});
  auto pkt = payload_packet();
  for (auto _ : state) {
    auto copy = pkt;
    benchmark::DoNotOptimize(impl->process(copy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(std::string(nf::spec_of(type).name));
}
BENCHMARK(BM_SoftwareNf)->DenseRange(0, nf::kNumNfTypes - 1);

void BM_EbpfFastEncrypt(benchmark::State& state) {
  auto program = nf::ebpf::gen_fast_encrypt();
  if (!nic::verify(program).ok) state.SkipWithError("program rejected");
  nic::HelperConfig helpers;
  auto pkt = payload_packet();
  for (auto _ : state) {
    auto copy = pkt;
    benchmark::DoNotOptimize(nic::execute(program, copy, helpers));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EbpfFastEncrypt);

void BM_EbpfAcl(benchmark::State& state) {
  nf::NfConfig config;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    config.rules.push_back(
        {{"src_ip", "10." + std::to_string(i % 200) + ".0.0/16"},
         {"drop", "False"}});
  }
  auto program = nf::ebpf::gen_acl(nf::parse_acl_rules(config));
  if (!nic::verify(program).ok) state.SkipWithError("program rejected");
  auto pkt = payload_packet();
  for (auto _ : state) {
    auto copy = pkt;
    benchmark::DoNotOptimize(nic::execute(program, copy, {}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EbpfAcl)->Arg(8)->Arg(64)->Arg(256);

void BM_PacketParse(benchmark::State& state) {
  auto pkt = payload_packet();
  net::push_nsh(pkt, 1, 255);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::ParsedLayers::parse(pkt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketParse);

}  // namespace

BENCHMARK_MAIN();
