// "Meta-compiler Benefits and Overhead" (section 5.3): lines of code the
// metacompiler auto-generates for the 4-chain deployment, split by
// target. The paper: more than a third of the total P4 (about 820 of
// 1700 lines) is auto-generated, most of it packet steering.
#include "bench/common.h"

int main() {
  using namespace lemur;
  const topo::Topology topo = topo::Topology::lemur_testbed();
  placer::PlacerOptions options;

  std::printf("Lemur reproduction — metacompiler code-generation "
              "accounting (section 5.3)\n");
  auto chains = bench::chain_set({1, 2, 3, 4}, 1.0, topo, options);
  metacompiler::CompilerOracle oracle(topo);
  auto placement = placer::place(placer::Strategy::kLemur, chains, topo,
                                 options, oracle);
  if (!placement.feasible) {
    std::printf("placement infeasible: %s\n",
                placement.infeasible_reason.c_str());
    return 1;
  }
  auto artifacts = metacompiler::compile(chains, placement, topo);
  if (!artifacts.ok) {
    std::printf("compile failed: %s\n", artifacts.error.c_str());
    return 1;
  }

  bench::print_header("Generated code, chains {1,2,3,4}");
  std::printf("%-26s %10s %12s %10s\n", "target", "total", "generated",
              "fraction");
  const int p4_total =
      artifacts.p4.coordination_lines + artifacts.p4.library_lines;
  std::printf("%-26s %10d %12d %9.0f%%\n", "P4 (unified program)", p4_total,
              artifacts.p4.coordination_lines,
              100.0 * artifacts.p4.coordination_lines /
                  std::max(1, p4_total));
  for (const auto& plan : artifacts.server_plans) {
    if (plan.segments.empty()) continue;
    const auto loc = plan.loc_summary(chains);
    std::printf("%-26s %10d %12d %9.0f%%\n",
                ("BESS (server " + std::to_string(plan.server) + ")")
                    .c_str(),
                loc.total, loc.coordination,
                100.0 * loc.coordination / std::max(1, loc.total));
  }
  std::printf("%-26s %10d %12d %9.0f%%\n", "all targets",
              artifacts.loc.total, artifacts.loc.generated,
              100.0 * artifacts.loc.generated_fraction());
  std::printf(
      "\nExpected shape: roughly a third of the emitted code is "
      "metacompiler-generated\ncoordination (steering, splitting, "
      "NSH routing) — the manual labor Lemur saves\n(section 5.3: "
      "~820 of ~1700 P4 lines).\n");
  return 0;
}
