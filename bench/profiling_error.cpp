// "The stability of profiled cycle costs" (section 5.2): reduce the
// profiled costs by 1-10% (mimicking profiling error) and execute the
// resulting configuration on the testbed *under the same offered load*
// as the error-free baseline. The paper found the deployed configuration
// achieves the same aggregate marginal throughput up to ~8% error: the
// placement decision (pattern + core allocation) is robust because real
// execution has headroom over the worst-case profiles.
#include "bench/common.h"

namespace {

using namespace lemur;

struct Run {
  bool feasible = false;
  double marginal = -1;
  std::vector<double> assigned;
};

Run run_with_error(double error_fraction, const topo::Topology& topo,
                   const std::vector<double>& offered) {
  Run out;
  placer::PlacerOptions options;
  options.profile_scale = 1.0 - error_fraction;
  auto chains = bench::chain_set({1, 2, 3, 4}, 0.9, topo, options);
  metacompiler::CompilerOracle oracle(topo);
  auto placement = placer::place(placer::Strategy::kLemur, chains, topo,
                                 options, oracle);
  if (!placement.feasible) return out;
  out.feasible = true;
  for (const auto& c : placement.chains) {
    out.assigned.push_back(c.assigned_gbps);
  }
  auto artifacts = metacompiler::compile(chains, placement, topo);
  if (!artifacts.ok) return out;
  runtime::Testbed testbed(chains, placement, artifacts, topo);
  if (!testbed.ok()) return out;
  const auto m = testbed.run(5.0, 1.05, offered);
  out.marginal = m.aggregate_gbps - placement.aggregate_t_min_gbps;
  return out;
}

}  // namespace

int main() {
  const topo::Topology topo = topo::Topology::lemur_testbed();
  std::printf("Lemur reproduction — profiling-error sensitivity "
              "(section 5.2), chains {1,2,3,4} at delta 0.9\n");
  bench::print_header(
      "Profiling error sweep (same offered load, measured on the testbed)");

  // Baseline configuration and offered load.
  const Run baseline = run_with_error(0.0, topo, {});
  std::vector<double> offered;
  for (double a : baseline.assigned) offered.push_back(a * 1.05);

  std::printf("%-12s %10s %16s %16s %8s\n", "error", "feasible",
              "measured-marginal", "baseline", "match");
  for (int error_pct = 0; error_pct <= 10; ++error_pct) {
    const Run run = run_with_error(error_pct / 100.0, topo, offered);
    const bool match = run.marginal >= 0 &&
                       std::abs(run.marginal - baseline.marginal) <
                           0.05 * baseline.marginal;
    std::printf("%-11d%% %10s %16s %16.2f %8s\n", error_pct,
                run.feasible ? "yes" : "no",
                bench::cell(run.marginal, run.marginal >= 0).c_str(),
                baseline.marginal, match ? "same" : "diff");
  }
  std::printf(
      "\nExpected shape: the deployed configuration delivers the baseline "
      "marginal\nthroughput despite profile under-estimation up to roughly "
      "8%% (section 5.2).\n");
  return 0;
}
