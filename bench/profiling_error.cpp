// "The stability of profiled cycle costs" (section 5.2): reduce the
// profiled costs by 1-10% (mimicking profiling error) and execute the
// resulting configuration on the testbed *under the same offered load*
// as the error-free baseline. The paper found the deployed configuration
// achieves the same aggregate marginal throughput up to ~8% error: the
// placement decision (pattern + core allocation) is robust because real
// execution has headroom over the worst-case profiles.
#include "bench/common.h"
#include "src/placer/profile.h"

namespace {

using namespace lemur;

struct Run {
  bool feasible = false;
  double marginal = -1;
  std::vector<double> assigned;
  std::vector<telemetry::MeasuredNfProfile> measured;
  std::vector<placer::StaticNfProfile> static_table;
};

Run run_with_error(double error_fraction, const topo::Topology& topo,
                   const std::vector<double>& offered,
                   bool capture_profiles = false) {
  Run out;
  placer::PlacerOptions options;
  options.profile_scale = 1.0 - error_fraction;
  auto chains = bench::chain_set({1, 2, 3, 4}, 0.9, topo, options);
  metacompiler::CompilerOracle oracle(topo);
  auto placement = placer::place(placer::Strategy::kLemur, chains, topo,
                                 options, oracle);
  if (!placement.feasible) return out;
  out.feasible = true;
  for (const auto& c : placement.chains) {
    out.assigned.push_back(c.assigned_gbps);
  }
  auto artifacts = metacompiler::compile(chains, placement, topo);
  if (!artifacts.ok) return out;
  runtime::Testbed testbed(chains, placement, artifacts, topo);
  if (!testbed.ok()) return out;
  const auto m = testbed.run(5.0, 1.05, offered);
  out.marginal = m.aggregate_gbps - placement.aggregate_t_min_gbps;
  if (capture_profiles) {
    out.measured = testbed.measured_nf_profiles();
    out.static_table = placer::static_profile_table(
        chains, topo.servers.front(), options);
  }
  return out;
}

/// Prints static vs measured cycles/packet per software NF on the
/// baseline deployment — closing the profile feedback loop: the measured
/// column is what a re-profiling pass would hand back to the Placer.
void print_profile_comparison(const Run& baseline) {
  bench::print_header(
      "Static profile vs measured cycles/packet (baseline deployment)");
  std::printf("%-8s %-20s %10s %12s %12s %8s\n", "chain", "nf", "packets",
              "static-cyc", "measured-cyc", "delta");
  for (const auto& row : baseline.measured) {
    if (row.platform != net::HopPlatform::kServer) continue;
    const placer::StaticNfProfile* ref = nullptr;
    for (const auto& s : baseline.static_table) {
      if (s.chain == row.chain && s.node == row.node) {
        ref = &s;
        break;
      }
    }
    if (ref == nullptr || ref->cycles == 0) continue;
    const double delta =
        row.cycles_per_packet / static_cast<double>(ref->cycles) - 1.0;
    std::printf("%-8d %-20s %10llu %12llu %12.1f %+7.1f%%\n", row.chain + 1,
                row.name.c_str(),
                static_cast<unsigned long long>(row.packets),
                static_cast<unsigned long long>(ref->cycles),
                row.cycles_per_packet, delta * 100);
  }
  std::printf("\nNegative deltas are the execution headroom that makes the "
              "placement robust\nto profiling error: static profiles are "
              "per-packet worst cases.\n");
}

}  // namespace

int main() {
  const topo::Topology topo = topo::Topology::lemur_testbed();
  std::printf("Lemur reproduction — profiling-error sensitivity "
              "(section 5.2), chains {1,2,3,4} at delta 0.9\n");
  bench::print_header(
      "Profiling error sweep (same offered load, measured on the testbed)");

  // Baseline configuration and offered load.
  const Run baseline = run_with_error(0.0, topo, {}, true);
  std::vector<double> offered;
  for (double a : baseline.assigned) offered.push_back(a * 1.05);

  std::printf("%-12s %10s %16s %16s %8s\n", "error", "feasible",
              "measured-marginal", "baseline", "match");
  for (int error_pct = 0; error_pct <= 10; ++error_pct) {
    const Run run = run_with_error(error_pct / 100.0, topo, offered);
    const bool match = run.marginal >= 0 &&
                       std::abs(run.marginal - baseline.marginal) <
                           0.05 * baseline.marginal;
    std::printf("%-11d%% %10s %16s %16.2f %8s\n", error_pct,
                run.feasible ? "yes" : "no",
                bench::cell(run.marginal, run.marginal >= 0).c_str(),
                baseline.marginal, match ? "same" : "diff");
  }
  std::printf(
      "\nExpected shape: the deployed configuration delivers the baseline "
      "marginal\nthroughput despite profile under-estimation up to roughly "
      "8%% (section 5.2).\n");

  print_profile_comparison(baseline);
  return 0;
}
