// Figure 2(a-e) reproduction: Lemur vs Optimal / HW Preferred /
// SW Preferred / Minimum Bounce / Greedy over the canonical chain sets
// ({1,2,3,4} and all 3-subsets) and the delta sweep (0.5..4.0 step 0.5).
//
// Per (chain set, delta, strategy) the harness reports feasibility, the
// Placer-predicted aggregate throughput (the paper's diamond marker) and
// — for feasible placements — the measured aggregate from executing the
// generated configuration on the simulated testbed (the paper's bars).
// The aggregate t_min (the hashed rectangle) is printed per delta.
#include "bench/common.h"

namespace {

using namespace lemur;
using bench::ExperimentRow;

void run_figure(const char* figure, const std::vector<int>& combo) {
  const topo::Topology topo = topo::Topology::lemur_testbed();
  placer::PlacerOptions options;

  bench::print_header(std::string("Figure 2") + figure + " — chains {" +
                      [&] {
                        std::string s;
                        for (int n : combo) {
                          s += (s.empty() ? "" : ",") + std::to_string(n);
                        }
                        return s;
                      }());
  std::printf("%-6s %-8s", "delta", "t_min");
  for (auto strategy : bench::comparison_strategies()) {
    std::printf(" %13s", placer::to_string(strategy));
  }
  std::printf(" %13s\n", "Lemur-meas");

  int feasible_sets = 0;
  std::vector<int> feasible_count(bench::comparison_strategies().size(), 0);
  for (double delta = 0.5; delta <= 4.01; delta += 0.5) {
    auto chains = bench::chain_set(combo, delta, topo, options);
    std::printf("%-6.1f", delta);
    double measured = -1;
    bool any_feasible = false;
    std::vector<ExperimentRow> rows;
    for (auto strategy : bench::comparison_strategies()) {
      // Only the Lemur row is executed on the testbed (predictions track
      // measurements; the e2e tests cover the other strategies).
      const bool execute = strategy == placer::Strategy::kLemur;
      auto row = bench::run_strategy(strategy, chains, topo, options,
                                     execute, 5.0);
      if (row.feasible) any_feasible = true;
      if (execute) measured = row.measured_gbps;
      rows.push_back(std::move(row));
    }
    std::printf(" %-8.2f", rows[0].t_min_gbps);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::printf(" %13s",
                  bench::cell(rows[i].predicted_gbps, rows[i].feasible)
                      .c_str());
      if (rows[i].feasible && any_feasible) ++feasible_count[i];
    }
    std::printf(" %13s\n", bench::cell(measured, measured >= 0).c_str());
    if (any_feasible) ++feasible_sets;
  }
  std::printf("feasible-in-%d-solvable-sets:", feasible_sets);
  for (std::size_t i = 0; i < feasible_count.size(); ++i) {
    std::printf(" %s=%d/%d",
                placer::to_string(bench::comparison_strategies()[i]),
                feasible_count[i], feasible_sets);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Lemur reproduction — Figure 2: performance comparison of "
              "alternative schemes\n");
  run_figure("a", {1, 2, 3, 4});
  run_figure("b", {1, 2, 3});
  run_figure("c", {1, 2, 4});
  run_figure("d", {1, 3, 4});
  run_figure("e", {2, 3, 4});
  std::printf(
      "\nExpected shape (paper section 5.2): Lemur feasible in every "
      "solvable set;\nOptimal matches Lemur; HW Preferred flat and failing "
      "at high delta;\nSW Preferred only at low delta; Min Bounce failing "
      "beyond ~1.0; Greedy strong\nbut below Lemur; measured tracks "
      "predicted.\n");
  return 0;
}
