// Telemetry smoke bench: deploys the fig2 comparison workload (chains
// {1,2,3,4} at delta 0.9) with per-hop tracing on and off, checks that
// the observability layer (a) keeps its books straight — exact per-chain
// packet conservation and zero trace-continuity errors — and (b) costs
// less than 10% wall-clock overhead. Emits BENCH_telemetry.json with the
// per-rep timings and the traced run's compliance snapshot; exits 1 on
// any failed check, so ci.sh gates on it.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <fstream>

#include "bench/common.h"
#include "src/telemetry/json.h"

namespace {

using namespace lemur;

constexpr int kReps = 3;
constexpr double kDurationMs = 5.0;
constexpr double kMaxOverhead = 0.10;

struct RunResult {
  double wall_ms = 0;
  runtime::Measurement m;
  std::uint64_t continuity_errors = 0;
  std::uint64_t traces_observed = 0;
};

RunResult run_once(const std::vector<chain::ChainSpec>& chains,
                   const placer::PlacementResult& placement,
                   const metacompiler::CompiledArtifacts& artifacts,
                   const topo::Topology& topo, bool tracing) {
  runtime::Testbed testbed(chains, placement, artifacts, topo);
  if (!testbed.ok()) {
    std::printf("deployment error: %s\n", testbed.error().c_str());
    std::exit(1);
  }
  testbed.set_tracing(tracing);
  RunResult out;
  const auto start = std::chrono::steady_clock::now();
  out.m = testbed.run(kDurationMs);
  const auto stop = std::chrono::steady_clock::now();
  out.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  out.continuity_errors = testbed.traces().continuity_errors();
  out.traces_observed = testbed.traces().traces_observed();
  return out;
}

bool conserved(const runtime::Measurement& m) {
  for (std::size_t c = 0; c < m.chain_offered.size(); ++c) {
    if (m.chain_offered[c] != m.chain_delivered[c] + m.chain_dropped[c] +
                                  m.chain_residual[c]) {
      std::printf("conservation violated on chain %zu: offered %" PRIu64
                  " != delivered %" PRIu64 " + dropped %" PRIu64
                  " + residual %" PRIu64 "\n",
                  c + 1, m.chain_offered[c], m.chain_delivered[c],
                  m.chain_dropped[c], m.chain_residual[c]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const topo::Topology topo = topo::Topology::lemur_testbed();
  placer::PlacerOptions options;
  auto chains = bench::chain_set({1, 2, 3, 4}, 0.9, topo, options);
  metacompiler::CompilerOracle oracle(topo);
  auto placement =
      placer::place(placer::Strategy::kLemur, chains, topo, options, oracle);
  if (!placement.feasible) {
    std::printf("placement infeasible: %s\n",
                placement.infeasible_reason.c_str());
    return 1;
  }
  auto artifacts = metacompiler::compile(chains, placement, topo);
  if (!artifacts.ok) {
    std::printf("metacompiler error: %s\n", artifacts.error.c_str());
    return 1;
  }

  std::printf("Lemur reproduction — telemetry smoke (fig2 workload, "
              "chains {1,2,3,4} at delta 0.9)\n");
  bench::print_header("Tracing overhead, " + std::to_string(kReps) +
                      " reps of " + std::to_string(kDurationMs) + " ms");

  std::vector<double> traced_ms, untraced_ms;
  RunResult traced_last;
  bool ok = true;
  std::printf("%-6s %12s %12s\n", "rep", "traced-ms", "untraced-ms");
  for (int rep = 0; rep < kReps; ++rep) {
    auto traced = run_once(chains, placement, artifacts, topo, true);
    auto untraced = run_once(chains, placement, artifacts, topo, false);
    std::printf("%-6d %12.2f %12.2f\n", rep, traced.wall_ms,
                untraced.wall_ms);
    traced_ms.push_back(traced.wall_ms);
    untraced_ms.push_back(untraced.wall_ms);
    ok = ok && conserved(traced.m) && conserved(untraced.m);
    if (traced.continuity_errors != 0) {
      std::printf("continuity errors: %" PRIu64 " of %" PRIu64 " traces\n",
                  traced.continuity_errors, traced.traces_observed);
      ok = false;
    }
    traced_last = std::move(traced);
  }

  // Min-of-reps is the noise-robust wall-clock estimator; scheduler
  // hiccups only ever inflate a sample.
  const double best_traced =
      *std::min_element(traced_ms.begin(), traced_ms.end());
  const double best_untraced =
      *std::min_element(untraced_ms.begin(), untraced_ms.end());
  const double overhead =
      best_untraced > 0 ? best_traced / best_untraced - 1.0 : 0.0;
  std::printf("\nbest traced %.2f ms, best untraced %.2f ms, overhead "
              "%+.1f%% (budget %.0f%%)\n",
              best_traced, best_untraced, overhead * 100,
              kMaxOverhead * 100);
  if (overhead > kMaxOverhead) {
    std::printf("FAIL: tracing overhead exceeds budget\n");
    ok = false;
  }

  const auto& m = traced_last.m;
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("bench", "telemetry_smoke");
  w.kv("workload", "fig2 chains {1,2,3,4} delta 0.9");
  w.kv("reps", kReps);
  w.kv("duration_ms", kDurationMs);
  w.key("traced_wall_ms");
  w.begin_array();
  for (double v : traced_ms) w.value(v);
  w.end_array();
  w.key("untraced_wall_ms");
  w.begin_array();
  for (double v : untraced_ms) w.value(v);
  w.end_array();
  w.kv("tracing_overhead", overhead);
  w.kv("overhead_budget", kMaxOverhead);
  w.kv("aggregate_gbps", m.aggregate_gbps);
  w.kv("offered_packets", m.offered_packets);
  w.kv("delivered_packets", m.delivered_packets);
  w.kv("dropped_packets", m.dropped_packets);
  w.kv("residual_queued", m.residual_queued);
  w.kv("traces_observed", traced_last.traces_observed);
  w.kv("continuity_errors", traced_last.continuity_errors);
  w.kv("slo_compliant", m.slo.compliant());
  w.kv("slo_violations",
       static_cast<std::uint64_t>(m.slo.violations.size()));
  w.kv("pass", ok);
  w.end_object();
  std::ofstream out("BENCH_telemetry.json");
  out << w.str() << '\n';
  std::printf("wrote BENCH_telemetry.json (%s)\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
