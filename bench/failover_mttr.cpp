// Failover MTTR bench: sweeps every fault type in the chaos taxonomy
// through the live-recovery pipeline (telemetry detection -> incremental
// re-place -> verify -> state-migrating atomic swap) and reports, per
// fault: recovery time (MTTR), failure-window packet loss, swap-flush
// loss, and SLO-violation duration — all in virtual time, so the whole
// table is bit-identical across runs with the same seed.
//
// Gates (any failing exits 1):
//   - every placement fault (server/NIC/OF/link death) recovers, every
//     impairment (corrupt) closes its ride-through, silent impairments
//     (dup/reorder) leave no spurious events;
//   - per-chain conservation holds exactly through fault + flush + swap:
//     offered == delivered + dropped + residual;
//   - the incrementally re-placed plan's throughput stays within 1% of a
//     cold from-scratch re-place on the same degraded rack;
//   - with --baseline <path>, the worst MTTR stays within 1.5x of the
//     committed BENCH_failover.json (MTTR is virtual-time deterministic,
//     so drift means the detection or control path changed).
//
// Emits BENCH_failover.json.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/runtime/recovery.h"
#include "src/telemetry/json.h"

namespace {

using namespace lemur;

constexpr double kChaosMs = 8.0;        // Chaos window (fault at 2 ms).
constexpr double kThroughputMs = 5.0;   // Warm-vs-cold comparison window.
constexpr double kMaxThroughputDelta = 0.01;
constexpr double kMaxMttrGrowth = 1.5;  // vs --baseline worst MTTR.
constexpr std::uint64_t kSeed = 7;

enum class Expect {
  kReplace,      // Placement fault: detect + re-place + swap.
  kRideThrough,  // Corruption: event that closes on quiescence.
  kSilent,       // Dup/reorder: no drops, no events, conservation only.
};

struct ScenarioSpec {
  const char* name;
  /// Fault spec with %d for the victim server (picked from the live
  /// placement at runtime); used verbatim when no %d.
  const char* fault_format;
  Expect expect;
  bool use_last_server;  // %d = last used server (first otherwise).
  bool smartnic;
  bool openflow;
  std::vector<int> chain_numbers;
  double delta;
};

const std::vector<ScenarioSpec>& scenarios() {
  static const std::vector<ScenarioSpec> kScenarios = {
      {"server-death", "server:%d@2", Expect::kReplace, true, false, false,
       {3, 5}, 1.0},
      {"nic-death", "nic:0@2", Expect::kReplace, false, true, false, {5},
       4.0},
      {"of-down", "of@2", Expect::kReplace, false, false, true, {3}, 0.5},
      {"link-down", "link:%d@2+1", Expect::kReplace, true, false, false,
       {3, 5}, 1.0},
      {"wire-corrupt", "corrupt:%d@2+2@0.25", Expect::kRideThrough, false,
       false, false, {3}, 1.0},
      {"wire-duplicate", "dup:%d@2+2@0.25", Expect::kSilent, false, false,
       false, {3}, 1.0},
      {"wire-reorder", "reorder:%d@2+2@0.25", Expect::kSilent, false, false,
       false, {3}, 1.0},
  };
  return kScenarios;
}

struct ScenarioResult {
  std::string name;
  std::string fault_spec;
  bool ok = true;
  std::string failure;
  std::vector<runtime::RecoveryEvent> events;
  std::uint64_t mttr_ns = 0;  ///< Worst detected->recovered among events.
  runtime::Measurement m;
  double warm_gbps = -1;  ///< Recovered plan, fresh measurement window.
  double cold_gbps = -1;  ///< From-scratch re-place on the degraded rack.
};

void fail(ScenarioResult& r, const std::string& why) {
  r.ok = false;
  if (!r.failure.empty()) r.failure += "; ";
  r.failure += why;
  std::printf("  FAIL: %s\n", why.c_str());
}

bool conserved(const runtime::Measurement& m, ScenarioResult& r) {
  bool ok = true;
  for (std::size_t c = 0; c < m.chain_offered.size(); ++c) {
    if (m.chain_offered[c] != m.chain_delivered[c] + m.chain_dropped[c] +
                                  m.chain_residual[c]) {
      fail(r, "conservation violated on chain " + std::to_string(c + 1));
      ok = false;
    }
  }
  if (m.offered_packets !=
      m.delivered_packets + m.drops.total() + m.residual_queued) {
    fail(r, "aggregate conservation violated");
    ok = false;
  }
  return ok;
}

int pick_victim_server(const placer::PlacementResult& placement, bool last) {
  std::vector<int> used;
  for (const auto& g : placement.subgroups) {
    if (std::find(used.begin(), used.end(), g.server) == used.end()) {
      used.push_back(g.server);
    }
  }
  std::sort(used.begin(), used.end());
  if (used.empty()) return 0;
  return last ? used.back() : used.front();
}

double measure_gbps(const std::vector<chain::ChainSpec>& chains,
                    const placer::PlacementResult& placement,
                    const metacompiler::CompiledArtifacts& artifacts,
                    const topo::Topology& topo) {
  runtime::Testbed testbed(chains, placement, artifacts, topo, kSeed);
  if (!testbed.ok()) return -1;
  return testbed.run(kThroughputMs).aggregate_gbps;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  ScenarioResult r;
  r.name = spec.name;
  std::printf("%s\n", spec.name);

  topo::Topology topo = topo::Topology::multi_server(2, 8);
  placer::PlacerOptions options;
  if (spec.smartnic) topo.smartnics.push_back(topo::SmartNicSpec{});
  if (spec.openflow) {
    topo.openflow = topo::OpenFlowSwitchSpec{};
    options.disable_pisa_nfs = true;
    options.restrict_ipv4fwd_to_p4 = false;
  }
  auto chains = bench::chain_set(spec.chain_numbers, spec.delta, topo,
                                 options);
  metacompiler::CompilerOracle oracle(topo);
  auto placement =
      placer::place(placer::Strategy::kLemur, chains, topo, options, oracle);
  if (!placement.feasible) {
    fail(r, "healthy placement infeasible: " + placement.infeasible_reason);
    return r;
  }
  auto artifacts = metacompiler::compile(chains, placement, topo);
  if (!artifacts.ok) {
    fail(r, "metacompiler: " + artifacts.error);
    return r;
  }

  r.fault_spec = spec.fault_format;
  if (r.fault_spec.find("%d") != std::string::npos) {
    const int victim = pick_victim_server(placement, spec.use_last_server);
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, spec.fault_format, victim);
    r.fault_spec = buffer;
  }

  std::string parse_error;
  auto events = runtime::FaultScheduler::parse(r.fault_spec, &parse_error);
  if (!events.has_value()) {
    fail(r, "fault spec: " + parse_error);
    return r;
  }
  runtime::FaultScheduler faults(*events, kSeed);
  metacompiler::CompilerOracle live_oracle(topo);
  runtime::RecoveryController controller(chains, placement, topo, options,
                                         live_oracle);
  runtime::Testbed testbed(chains, placement, artifacts, topo, kSeed);
  if (!testbed.ok()) {
    fail(r, "deploy: " + testbed.error());
    return r;
  }
  testbed.set_fault_scheduler(&faults);
  testbed.set_recovery_hook(&controller);
  r.m = testbed.run(kChaosMs);
  r.events = controller.events();
  conserved(r.m, r);

  for (const auto& ev : r.events) {
    if (ev.recovered) {
      r.mttr_ns = std::max(r.mttr_ns, ev.recovered_ns - ev.detected_ns);
    }
    std::printf("  %-10s %-28s detect %.2f ms, recover %.2f ms, mttr "
                "%.0f us, lost %" PRIu64 "+%" PRIu64 "\n",
                ev.element.c_str(), ev.action.c_str(),
                static_cast<double>(ev.detected_ns) * 1e-6,
                static_cast<double>(ev.recovered_ns) * 1e-6,
                static_cast<double>(ev.recovered_ns - ev.detected_ns) * 1e-3,
                ev.fault_window_drops, ev.recovery_flush_drops);
  }

  switch (spec.expect) {
    case Expect::kReplace: {
      if (r.events.empty()) {
        fail(r, "placement fault produced no recovery event");
        break;
      }
      for (const auto& ev : r.events) {
        if (!ev.recovered) fail(r, ev.element + " " + ev.action);
      }
      if (testbed.plan_generation() < 1) {
        fail(r, "no dataplane swap happened");
      }
      if (!r.ok) break;
      // Warm (incrementally re-placed) vs cold (from-scratch re-place on
      // the same degraded rack, same chain set including any sheds).
      const auto& gen_chains = controller.current_chains();
      const auto& gen_topo = controller.current_topo();
      const auto* gen_artifacts = controller.current_artifacts();
      r.warm_gbps = measure_gbps(gen_chains, controller.current_placement(),
                                 *gen_artifacts, gen_topo);
      metacompiler::CompilerOracle cold_oracle(gen_topo);
      auto cold_placement = placer::place(placer::Strategy::kLemur,
                                          gen_chains, gen_topo, options,
                                          cold_oracle);
      if (!cold_placement.feasible) {
        fail(r, "cold re-place infeasible: " +
                    cold_placement.infeasible_reason);
        break;
      }
      auto cold_artifacts =
          metacompiler::compile(gen_chains, cold_placement, gen_topo);
      if (!cold_artifacts.ok) {
        fail(r, "cold re-place artifacts: " + cold_artifacts.error);
        break;
      }
      r.cold_gbps =
          measure_gbps(gen_chains, cold_placement, cold_artifacts, gen_topo);
      std::printf("  warm %.3f Gbps vs cold re-place %.3f Gbps\n",
                  r.warm_gbps, r.cold_gbps);
      if (r.warm_gbps < 0 || r.cold_gbps < 0) {
        fail(r, "throughput comparison run failed");
      } else if (std::abs(r.warm_gbps - r.cold_gbps) >
                 kMaxThroughputDelta * r.cold_gbps) {
        fail(r, "recovered throughput deviates >1% from cold re-place");
      }
      break;
    }
    case Expect::kRideThrough: {
      if (r.events.size() != 1 ||
          r.events.front().action != "impairment-ride-through") {
        fail(r, "expected exactly one ride-through event");
        break;
      }
      if (!r.events.front().recovered) {
        fail(r, "ride-through never closed");
      }
      if (testbed.plan_generation() != 0) {
        fail(r, "impairment must not trigger a dataplane swap");
      }
      break;
    }
    case Expect::kSilent: {
      // Duplication/reordering cause no drops, so telemetry-only
      // detection must stay quiet; the gate is exact conservation even
      // with cloned/delayed packets in flight.
      if (!r.events.empty()) {
        fail(r, "silent impairment produced recovery events");
      }
      if (r.m.delivered_packets == 0) fail(r, "nothing delivered");
      break;
    }
  }
  if (r.ok) std::printf("  ok\n");
  return r;
}

std::uint64_t read_baseline_worst_mttr(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::printf("cannot open baseline '%s'\n", path);
    return 0;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const auto pos = text.find("\"worst_mttr_ns\":");
  if (pos == std::string::npos) {
    std::printf("baseline '%s' has no worst_mttr_ns\n", path);
    return 0;
  }
  return static_cast<std::uint64_t>(
      std::atoll(text.c_str() + pos + std::strlen("\"worst_mttr_ns\":")));
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0) baseline_path = argv[i + 1];
  }

  std::printf("Lemur reproduction — failover MTTR sweep (chaos taxonomy, "
              "seed %" PRIu64 ")\n",
              kSeed);
  bench::print_header("fault -> detect -> re-place -> migrate -> swap");

  bool ok = true;
  std::uint64_t worst_mttr_ns = 0;
  std::vector<ScenarioResult> results;
  for (const auto& spec : scenarios()) {
    results.push_back(run_scenario(spec));
    ok = ok && results.back().ok;
    worst_mttr_ns = std::max(worst_mttr_ns, results.back().mttr_ns);
  }

  std::printf("\nworst MTTR %.0f us across %zu scenarios\n",
              static_cast<double>(worst_mttr_ns) * 1e-3, results.size());

  if (baseline_path != nullptr) {
    const std::uint64_t baseline = read_baseline_worst_mttr(baseline_path);
    if (baseline > 0) {
      const auto ceiling = static_cast<std::uint64_t>(
          static_cast<double>(baseline) * kMaxMttrGrowth);
      std::printf("baseline worst_mttr_ns %" PRIu64 ", ceiling %" PRIu64
                  ": %s\n",
                  baseline, ceiling,
                  worst_mttr_ns <= ceiling ? "ok" : "REGRESSION");
      if (worst_mttr_ns > ceiling) {
        std::printf("FAIL: worst MTTR grew >%.1fx over baseline\n",
                    kMaxMttrGrowth);
        ok = false;
      }
    }
  }

  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("bench", "failover_mttr");
  w.kv("seed", kSeed);
  w.kv("chaos_ms", kChaosMs);
  w.kv("worst_mttr_ns", worst_mttr_ns);
  w.key("scenarios");
  w.begin_array();
  for (const auto& r : results) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("faults", r.fault_spec);
    w.kv("ok", r.ok);
    if (!r.failure.empty()) w.kv("failure", r.failure);
    w.kv("mttr_ns", r.mttr_ns);
    w.kv("offered_packets", r.m.offered_packets);
    w.kv("delivered_packets", r.m.delivered_packets);
    if (r.warm_gbps >= 0) w.kv("warm_gbps", r.warm_gbps);
    if (r.cold_gbps >= 0) w.kv("cold_gbps", r.cold_gbps);
    w.key("events");
    w.begin_array();
    for (const auto& ev : r.events) {
      w.begin_object();
      w.kv("element", ev.element);
      w.kv("action", ev.action);
      w.kv("detected_ns", ev.detected_ns);
      w.kv("recovered_ns", ev.recovered_ns);
      w.kv("fault_window_drops", ev.fault_window_drops);
      w.kv("recovery_flush_drops", ev.recovery_flush_drops);
      w.kv("slo_violation_ns", ev.slo_violation_ns);
      w.kv("recovered", ev.recovered);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.kv("pass", ok);
  w.end_object();
  std::ofstream out("BENCH_failover.json");
  out << w.str() << '\n';
  std::printf("wrote BENCH_failover.json (%s)\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
