// "Adding latency constraints" (section 5.3): chains {1,4} with a d_max
// of 45 us admit bounce-heavy, high-marginal placements (the paper
// measured >21 Gbps); tightening d_max to 25 us forces fewer bounces and
// costs throughput (~9 Gbps in the paper).
#include "bench/common.h"

int main() {
  using namespace lemur;
  const topo::Topology topo = topo::Topology::lemur_testbed();
  placer::PlacerOptions options;

  std::printf("Lemur reproduction — latency SLOs on chains {1,4} "
              "(section 5.3)\n");
  bench::print_header("Latency-constrained placement");
  std::printf("%-10s %10s %12s %10s %14s\n", "d_max", "feasible",
              "predicted", "bounces", "worst-lat-us");

  for (double d_max : {1e9, 45.0, 32.0, 15.0}) {
    auto chains = bench::chain_set({1, 4}, 0.5, topo, options);
    for (auto& spec : chains) spec.slo = spec.slo.with_latency(d_max);
    metacompiler::CompilerOracle oracle(topo);
    auto placement = placer::place(placer::Strategy::kLemur, chains, topo,
                                   options, oracle);
    int bounces = 0;
    double worst_latency = 0;
    for (const auto& c : placement.chains) {
      bounces += c.bounces;
      worst_latency = std::max(worst_latency, c.latency_us);
    }
    char label[32];
    if (d_max > 1e6) {
      std::snprintf(label, sizeof(label), "unbounded");
    } else {
      std::snprintf(label, sizeof(label), "%.0f us", d_max);
    }
    std::printf("%-10s %10s %12s %10d %14.2f\n", label,
                placement.feasible ? "yes" : "no",
                bench::cell(placement.aggregate_gbps, placement.feasible)
                    .c_str(),
                placement.feasible ? bounces : 0,
                placement.feasible ? worst_latency : 0.0);
  }
  std::printf(
      "\nExpected shape: a loose bound admits the bounce-heavy placement "
      "at full\nthroughput; tightening it forces fewer bounces and lower "
      "aggregate rate, and\nan unmeetable bound is infeasible "
      "(section 5.3).\n");
  return 0;
}
