// Figure 3b reproduction: SmartNIC placement. Chain 5 (ACL -> UrlFilter
// -> FastEncrypt -> IPv4Fwd) with and without the eBPF SmartNIC. The
// ChaCha NF has no P4 implementation but runs >10x faster on the NIC than
// on one server core, so Lemur offloads it and approaches the NIC's 40G
// line rate; server-only placements saturate earlier and become
// infeasible at higher delta.
#include "bench/common.h"

int main() {
  using namespace lemur;
  placer::PlacerOptions options;

  std::printf("Lemur reproduction — Figure 3b: chain 5 with/without the "
              "Netronome SmartNIC\n");
  bench::print_header("Figure 3b");
  std::printf("%-6s %-12s %12s %12s %12s %10s\n", "delta", "hardware",
              "t_min", "predicted", "measured", "nic-NFs");

  for (double delta : {1.0, 4.0, 8.0, 11.0}) {
    for (bool with_nic : {false, true}) {
      const topo::Topology topo =
          with_nic ? topo::Topology::lemur_testbed_with_smartnic()
                   : topo::Topology::lemur_testbed();
      auto chains = bench::chain_set({5}, delta, topo, options);
      metacompiler::CompilerOracle oracle(topo);
      auto placement = placer::place(placer::Strategy::kLemur, chains, topo,
                                     options, oracle);
      double measured = -1;
      if (placement.feasible) {
        auto artifacts = metacompiler::compile(chains, placement, topo);
        if (artifacts.ok) {
          runtime::Testbed testbed(chains, placement, artifacts, topo);
          if (testbed.ok()) measured = testbed.run(5.0).aggregate_gbps;
        }
      }
      std::printf("%-6.1f %-12s %12.2f %12s %12s %10zu\n", delta,
                  with_nic ? "NIC+server" : "server-only",
                  placement.aggregate_t_min_gbps,
                  bench::cell(placement.aggregate_gbps, placement.feasible)
                      .c_str(),
                  bench::cell(measured, measured >= 0).c_str(),
                  placement.nic_nfs.size());
    }
  }
  std::printf(
      "\nExpected shape: with the NIC, FastEncrypt offloads (nic-NFs > 0) "
      "and the\nchain reaches higher rates; server-only saturates on "
      "FastEncrypt cores and\ndrops out at higher delta (section 5.3).\n");
  return 0;
}
