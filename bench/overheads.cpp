// "Meta-compiler Benefits and Overhead" microbenchmarks (section 5.3):
// the coordination costs Lemur imposes — NSH encap/decap cycles on BESS
// (~220), multi-core steering (~180), and the two switch stages burned by
// encap/decap — measured with google-benchmark.
#include <benchmark/benchmark.h>

#include "src/bess/nsh_modules.h"
#include "src/chain/parser.h"
#include "src/metacompiler/p4_compose.h"
#include "src/net/packet_builder.h"
#include "src/pisa/compiler.h"

namespace {

using namespace lemur;

net::PacketBatch make_batch(std::size_t n, bool with_nsh) {
  net::PacketBatch batch;
  for (std::size_t i = 0; i < n; ++i) {
    auto pkt = net::PacketBuilder().frame_size(1500).build();
    if (with_nsh) net::push_nsh(pkt, 1, 255);
    batch.push(std::move(pkt));
  }
  return batch;
}

void BM_NshEncapDecapCycles(benchmark::State& state) {
  std::mt19937_64 rng(1);
  std::uint64_t total_cycles = 0;
  std::uint64_t total_packets = 0;
  for (auto _ : state) {
    std::uint64_t cycles = 0;
    bess::Context ctx(&cycles, 1.7, &rng);
    bess::NshEncap encap("encap", 1, 255);
    bess::NshDecap decap("decap");
    decap.map(1, 255, 0);
    encap.connect(0, &decap);
    encap.process(ctx, make_batch(32, false));
    total_cycles += cycles;
    total_packets += 32;
  }
  state.counters["virtual_cycles_per_packet"] = benchmark::Counter(
      static_cast<double>(total_cycles) /
      static_cast<double>(total_packets));
}
BENCHMARK(BM_NshEncapDecapCycles);

void BM_SteeringCycles(benchmark::State& state) {
  std::mt19937_64 rng(1);
  std::uint64_t total_cycles = 0;
  std::uint64_t total_packets = 0;
  for (auto _ : state) {
    std::uint64_t cycles = 0;
    bess::Context ctx(&cycles, 1.7, &rng);
    bess::LoadBalanceSteer steer("steer",
                                 static_cast<int>(state.range(0)));
    steer.process(ctx, make_batch(32, false));
    total_cycles += cycles;
    total_packets += 32;
  }
  state.counters["virtual_cycles_per_packet"] = benchmark::Counter(
      static_cast<double>(total_cycles) /
      static_cast<double>(total_packets));
}
BENCHMARK(BM_SteeringCycles)->Arg(1)->Arg(2)->Arg(4);

void BM_NshPushPopWallClock(benchmark::State& state) {
  auto pkt = net::PacketBuilder().frame_size(1500).build();
  for (auto _ : state) {
    net::push_nsh(pkt, 1, 255);
    net::pop_nsh(pkt);
    benchmark::DoNotOptimize(pkt.data.data());
  }
}
BENCHMARK(BM_NshPushPopWallClock);

void BM_P4EncapDecapStageCost(benchmark::State& state) {
  // Composes the same chain with and without a server segment: the NSH
  // steering/encap machinery must cost a small constant number of extra
  // stages (the paper burns two).
  using placer::Pattern;
  using placer::Target;
  const topo::Topology topo = topo::Topology::lemur_testbed();
  int with_nsh_stages = 0;
  int without_nsh_stages = 0;
  for (auto _ : state) {
    auto parsed = chain::parse_chain("ACL -> Encrypt -> IPv4Fwd");
    chain::ChainSpec spec;
    spec.graph = std::move(parsed.graph);
    spec.aggregate_id = 1;
    // Mixed: Encrypt on the server -> NSH machinery present.
    Pattern mixed(3);
    mixed[0].target = Target::kPisa;
    mixed[2].target = Target::kPisa;
    std::vector<metacompiler::ChainRouting> routing = {
        metacompiler::build_routing(spec, mixed, 0)};
    auto artifact = metacompiler::compose_p4({spec}, routing, {}, topo, {});
    with_nsh_stages =
        pisa::compile(artifact.program, topo.tor).stages_required;

    auto parsed2 = chain::parse_chain("ACL -> IPv4Fwd");
    chain::ChainSpec all_p4;
    all_p4.graph = std::move(parsed2.graph);
    all_p4.aggregate_id = 1;
    Pattern pattern(2);
    pattern[0].target = Target::kPisa;
    pattern[1].target = Target::kPisa;
    std::vector<metacompiler::ChainRouting> routing2 = {
        metacompiler::build_routing(all_p4, pattern, 0)};
    auto artifact2 =
        metacompiler::compose_p4({all_p4}, routing2, {}, topo, {});
    without_nsh_stages =
        pisa::compile(artifact2.program, topo.tor).stages_required;
    benchmark::DoNotOptimize(with_nsh_stages);
  }
  state.counters["stages_with_nsh"] = with_nsh_stages;
  state.counters["stages_without_nsh"] = without_nsh_stages;
}
BENCHMARK(BM_P4EncapDecapStageCost);

}  // namespace

BENCHMARK_MAIN();
