// Dataplane fast-path microbench: drives the fig2 comparison workload
// (chains {1,2,3,4} at delta 0.9) through the full rack with the three
// fast-path layers toggled — packet pooling, parse-once metadata, and
// the AES fast path — plus a FlatFlowTable-vs-unordered_map churn
// microbench. The "slow" configuration (everything off) approximates the
// pre-fast-path dataplane, so fast/slow is an honest speedup figure.
//
// Emits BENCH_dataplane.json. With --baseline <path>, compares this
// run's pooled pps against the committed baseline's and exits 1 when it
// regresses more than 10% — the packets/sec regression gate ci.sh runs.
// Conservation (offered == delivered + dropped + residual) and
// fast-vs-slow measurement parity (identical per-chain delivered/dropped
// counts) are checked on every rep; either failing also exits 1.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "bench/common.h"
#include "src/net/flat_table.h"
#include "src/nf/crypto/aes128.h"
#include "src/telemetry/json.h"

namespace {

using namespace lemur;

constexpr int kReps = 3;
constexpr double kDurationMs = 5.0;
constexpr double kMaxRegression = 0.10;  // vs --baseline pooled_pps.

struct Config {
  const char* name;
  bool pooling;
  bool parse_cache;
  bool fast_aes;
};

constexpr Config kConfigs[] = {
    {"fast", true, true, true},
    {"no_pool", false, true, true},
    {"no_cache", true, false, true},
    {"slow", false, false, false},  // ~ the pre-fast-path dataplane.
};

struct ConfigResult {
  std::vector<double> wall_ms;
  double best_wall_ms = 0;
  double pps = 0;  ///< offered packets / best wall second.
  runtime::Measurement m;
  net::PacketPool::Stats pool;
  net::ParseCacheStats cache;
};

bool conserved(const runtime::Measurement& m) {
  for (std::size_t c = 0; c < m.chain_offered.size(); ++c) {
    if (m.chain_offered[c] != m.chain_delivered[c] + m.chain_dropped[c] +
                                  m.chain_residual[c]) {
      std::printf("conservation violated on chain %zu: offered %" PRIu64
                  " != delivered %" PRIu64 " + dropped %" PRIu64
                  " + residual %" PRIu64 "\n",
                  c + 1, m.chain_offered[c], m.chain_delivered[c],
                  m.chain_dropped[c], m.chain_residual[c]);
      return false;
    }
  }
  return true;
}

ConfigResult run_config(const Config& config,
                        const std::vector<chain::ChainSpec>& chains,
                        const placer::PlacementResult& placement,
                        const metacompiler::CompiledArtifacts& artifacts,
                        const topo::Topology& topo, bool* ok) {
  net::set_parse_cache_enabled(config.parse_cache);
  nf::crypto::set_fast_aes(config.fast_aes);
  ConfigResult out;
  for (int rep = 0; rep < kReps; ++rep) {
    runtime::Testbed testbed(chains, placement, artifacts, topo);
    if (!testbed.ok()) {
      std::printf("deployment error: %s\n", testbed.error().c_str());
      std::exit(1);
    }
    testbed.set_pooling(config.pooling);
    net::reset_parse_cache_stats();
    const auto start = std::chrono::steady_clock::now();
    auto m = testbed.run(kDurationMs);
    const auto stop = std::chrono::steady_clock::now();
    out.wall_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
    *ok = *ok && conserved(m);
    if (testbed.traces().continuity_errors() != 0) {
      std::printf("[%s] continuity errors: %" PRIu64 "\n", config.name,
                  testbed.traces().continuity_errors());
      *ok = false;
    }
    out.pool = testbed.packet_pool().stats();
    out.cache = net::parse_cache_stats();
    out.m = std::move(m);
  }
  out.best_wall_ms = *std::min_element(out.wall_ms.begin(),
                                       out.wall_ms.end());
  out.pps = out.best_wall_ms > 0
                ? static_cast<double>(out.m.offered_packets) /
                      (out.best_wall_ms * 1e-3)
                : 0;
  // Restore the defaults for whatever runs next in this process.
  net::set_parse_cache_enabled(true);
  nf::crypto::set_fast_aes(true);
  return out;
}

/// Fast-path toggles must not change what the rack *measures* — only how
/// fast the simulation computes it.
bool identical_measurements(const runtime::Measurement& a,
                            const runtime::Measurement& b,
                            const char* who) {
  bool same = a.chain_delivered == b.chain_delivered &&
              a.chain_dropped == b.chain_dropped &&
              a.chain_residual == b.chain_residual &&
              a.offered_packets == b.offered_packets;
  for (std::size_t c = 0; same && c < a.chain_p99_us.size(); ++c) {
    same = a.chain_p50_us[c] == b.chain_p50_us[c] &&
           a.chain_p99_us[c] == b.chain_p99_us[c];
  }
  if (!same) {
    std::printf("FAIL: '%s' changed the measured results vs 'fast'\n", who);
  }
  return same;
}

/// FlatFlowTable vs std::unordered_map under flow-table churn: insert a
/// working set, then mixed find/insert/erase rounds.
template <typename Table>
double churn_mops(std::size_t flows, int rounds) {
  Table table;
  std::uint64_t checksum = 0;
  std::uint64_t ops = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < flows; ++i) {
      const std::uint64_t key =
          (i * 0x9e3779b97f4a7c15ull) ^ static_cast<std::uint64_t>(round);
      auto it = table.find(key);
      if (it == table.end()) {
        table.emplace(key, static_cast<std::uint32_t>(i));
      } else {
        checksum += it->second;
        if ((i & 7) == 0) table.erase(key);
      }
      ops += 2;
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  if (checksum == 0xdeadbeef) std::printf("(unreachable)\n");
  return seconds > 0 ? static_cast<double>(ops) / seconds / 1e6 : 0;
}

double read_baseline_pps(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::printf("cannot open baseline '%s'\n", path);
    return -1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const auto pos = text.find("\"pooled_pps\":");
  if (pos == std::string::npos) {
    std::printf("baseline '%s' has no pooled_pps\n", path);
    return -1;
  }
  return std::atof(text.c_str() + pos + std::strlen("\"pooled_pps\":"));
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0) baseline_path = argv[i + 1];
  }

  const topo::Topology topo = topo::Topology::lemur_testbed();
  placer::PlacerOptions options;
  auto chains = bench::chain_set({1, 2, 3, 4}, 0.9, topo, options);
  metacompiler::CompilerOracle oracle(topo);
  auto placement =
      placer::place(placer::Strategy::kLemur, chains, topo, options, oracle);
  if (!placement.feasible) {
    std::printf("placement infeasible: %s\n",
                placement.infeasible_reason.c_str());
    return 1;
  }
  auto artifacts = metacompiler::compile(chains, placement, topo);
  if (!artifacts.ok) {
    std::printf("metacompiler error: %s\n", artifacts.error.c_str());
    return 1;
  }

  std::printf("Lemur reproduction — dataplane fast path (fig2 workload, "
              "chains {1,2,3,4} at delta 0.9)\n");
  bench::print_header("packets/sec by configuration, " +
                      std::to_string(kReps) + " reps of " +
                      std::to_string(kDurationMs) + " ms");

  bool ok = true;
  std::vector<ConfigResult> results;
  std::printf("%-10s %12s %14s %10s\n", "config", "best-ms", "pps",
              "vs-slow");
  for (const auto& config : kConfigs) {
    results.push_back(
        run_config(config, chains, placement, artifacts, topo, &ok));
  }
  const double slow_pps = results.back().pps;
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-10s %12.2f %14.0f %9.2fx\n", kConfigs[i].name,
                results[i].best_wall_ms, results[i].pps,
                slow_pps > 0 ? results[i].pps / slow_pps : 0);
  }

  // The fast path must be a pure optimization: identical measurements.
  for (std::size_t i = 1; i < results.size(); ++i) {
    ok = identical_measurements(results[0].m, results[i].m,
                                kConfigs[i].name) && ok;
  }

  bench::print_header("FlatFlowTable vs std::unordered_map (churn)");
  const double flat_mops =
      churn_mops<net::FlatFlowTable<std::uint64_t, std::uint32_t>>(20000, 50);
  const double std_mops =
      churn_mops<std::unordered_map<std::uint64_t, std::uint32_t>>(20000, 50);
  std::printf("flat %.1f Mops, std %.1f Mops, ratio %.2fx\n", flat_mops,
              std_mops, std_mops > 0 ? flat_mops / std_mops : 0);

  const double pooled_pps = results[0].pps;
  const double speedup = slow_pps > 0 ? pooled_pps / slow_pps : 0;
  std::printf("\npooled %0.f pps vs pre-fast-path %0.f pps: %.2fx\n",
              pooled_pps, slow_pps, speedup);

  double baseline_pps = -1;
  if (baseline_path != nullptr) {
    baseline_pps = read_baseline_pps(baseline_path);
    if (baseline_pps > 0) {
      const double floor = baseline_pps * (1.0 - kMaxRegression);
      std::printf("baseline pooled_pps %.0f, floor %.0f: %s\n", baseline_pps,
                  floor, pooled_pps >= floor ? "ok" : "REGRESSION");
      if (pooled_pps < floor) {
        std::printf("FAIL: pooled pps regressed >%.0f%% below baseline\n",
                    kMaxRegression * 100);
        ok = false;
      }
    }
  }

  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("bench", "dataplane_micro");
  w.kv("workload", "fig2 chains {1,2,3,4} delta 0.9");
  w.kv("reps", kReps);
  w.kv("duration_ms", kDurationMs);
  w.key("configs");
  w.begin_array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    w.begin_object();
    w.kv("name", kConfigs[i].name);
    w.key("wall_ms");
    w.begin_array();
    for (double v : r.wall_ms) w.value(v);
    w.end_array();
    w.kv("best_wall_ms", r.best_wall_ms);
    w.kv("pps", r.pps);
    w.kv("offered_packets", r.m.offered_packets);
    w.kv("delivered_packets", r.m.delivered_packets);
    w.kv("pool_allocated", r.pool.allocated);
    w.kv("pool_reused", r.pool.reused);
    w.kv("parse_hits", r.cache.hits);
    w.kv("parse_misses", r.cache.misses);
    w.end_object();
  }
  w.end_array();
  w.kv("pooled_pps", pooled_pps);
  w.kv("slow_pps", slow_pps);
  w.kv("speedup_vs_slow", speedup);
  w.kv("flat_table_mops", flat_mops);
  w.kv("std_table_mops", std_mops);
  w.kv("flat_vs_std", std_mops > 0 ? flat_mops / std_mops : 0);
  if (baseline_pps > 0) w.kv("baseline_pps", baseline_pps);
  w.kv("pass", ok);
  w.end_object();
  std::ofstream out("BENCH_dataplane.json");
  out << w.str() << '\n';
  std::printf("wrote BENCH_dataplane.json (%s)\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
