// Table 4 reproduction: profiled NF costs (CPU cycles/packet) over 500
// profiling runs, same-socket vs cross-socket NUMA, for Encrypt, Dedup,
// ACL (1024 rules), and NAT (12000 entries). Each run processes a batch
// through the NF module under worst-case traffic and reports the mean
// per-packet cycle cost; the table shows the mean/min/max across runs.
#include <algorithm>
#include <cstdio>

#include "src/bess/module.h"
#include "src/nf/software/factory.h"
#include "src/runtime/traffic.h"

namespace {

using namespace lemur;

struct ProfiledNf {
  const char* label;
  nf::NfType type;
  nf::NfConfig config;
  runtime::FlowMode mode;
};

struct Stats {
  double mean = 0;
  double min = 1e18;
  double max = 0;
};

Stats profile(const ProfiledNf& target, double numa_factor,
              std::uint64_t seed) {
  // Worst-case traffic per the paper's footnote 6: long-lived flows or
  // high-churn short flows depending on the NF.
  chain::ChainSpec spec;
  spec.graph.add_node(target.type, "profiled", target.config);
  spec.aggregate_id = 1;
  runtime::ChainTrafficModel traffic(spec, seed, target.mode);

  Stats stats;
  double total = 0;
  const int kRuns = 500;
  const int kBatch = 32;
  std::mt19937_64 rng(seed);
  auto nf_impl = nf::make_software_nf(target.type, target.config);
  nf::NfModule module("profiled", std::move(nf_impl));
  bess::Sink sink;
  module.connect(0, &sink);
  for (int run = 0; run < kRuns; ++run) {
    std::uint64_t cycles = 0;
    bess::Context ctx(&cycles, 1.7, &rng, numa_factor);
    net::PacketBatch batch;
    for (int i = 0; i < kBatch; ++i) {
      batch.push(traffic.make_packet(0));
    }
    module.process(ctx, std::move(batch));
    const double per_packet = static_cast<double>(cycles) / kBatch;
    total += per_packet;
    stats.min = std::min(stats.min, per_packet);
    stats.max = std::max(stats.max, per_packet);
  }
  stats.mean = total / kRuns;
  return stats;
}

}  // namespace

int main() {
  std::printf("Lemur reproduction — Table 4: profiled NF costs "
              "(CPU cycles/packet), 500 runs\n\n");
  nf::NfConfig acl_config;
  for (int i = 0; i < 1024; ++i) {
    acl_config.rules.push_back(
        {{"src_ip", "10." + std::to_string(i % 250) + ".0.0/16"},
         {"drop", "False"}});
  }
  nf::NfConfig nat_config;
  nat_config.ints["entries"] = 12000;

  const ProfiledNf targets[] = {
      {"Encrypt", nf::NfType::kEncrypt, {}, runtime::FlowMode::kLongLived},
      {"Dedup", nf::NfType::kDedup, {}, runtime::FlowMode::kLongLived},
      {"ACL (1024 rules)", nf::NfType::kAcl, acl_config,
       runtime::FlowMode::kLongLived},
      {"NAT (12000 entries)", nf::NfType::kNat, nat_config,
       runtime::FlowMode::kShortLived},
  };
  const double paper_mean_same[] = {8593, 30182, 3841, 463};
  const double paper_mean_diff[] = {8950, 31188, 4020, 496};

  std::printf("%-22s %-6s %10s %10s %10s   %s\n", "NF", "NUMA", "Mean",
              "Min", "Max", "paper-mean");
  int index = 0;
  for (const auto& target : targets) {
    for (bool cross : {false, true}) {
      const auto stats = profile(target, cross ? 1.04 : 1.0,
                                 17 + static_cast<std::uint64_t>(index));
      std::printf("%-22s %-6s %10.0f %10.0f %10.0f   %.0f\n", target.label,
                  cross ? "Diff" : "Same", stats.mean, stats.min, stats.max,
                  cross ? paper_mean_diff[index] : paper_mean_same[index]);
    }
    ++index;
  }
  std::printf(
      "\nExpected shape: costs extremely stable (max within ~6.5%% of the "
      "mean);\ncross-NUMA ~4%% above same-socket — matching paper "
      "Table 4.\n");
  return 0;
}
