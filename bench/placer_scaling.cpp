// "Scaling Placer Computation" (section 5.3): wall-clock of the heuristic
// vs brute-force placement as the chain count grows. The paper measured
// 3.5 s (heuristic) vs 14901 s (brute force) for the 4-chain case; our
// bounded-beam brute force is cheaper in absolute terms, but the
// orders-of-magnitude gap — the motivation for the heuristic — holds.
#include "bench/common.h"

int main() {
  using namespace lemur;
  const topo::Topology topo = topo::Topology::lemur_testbed();
  placer::PlacerOptions options;

  std::printf("Lemur reproduction — Placer scaling (section 5.3)\n");
  bench::print_header("Placement wall-clock");
  std::printf("%-22s %6s %12s %14s %10s\n", "chain set", "NFs",
              "heuristic-s", "brute-force-s", "speedup");

  const std::vector<std::vector<int>> sets = {
      {3}, {2, 3}, {1, 2, 3}, {1, 2, 3, 4}};
  for (const auto& combo : sets) {
    auto chains = bench::chain_set(combo, 1.0, topo, options);
    std::size_t nfs = 0;
    for (const auto& c : chains) nfs += c.graph.nodes().size();

    metacompiler::CompilerOracle oracle_h(topo);
    auto heuristic = placer::place(placer::Strategy::kLemur, chains, topo,
                                   options, oracle_h);
    metacompiler::CompilerOracle oracle_b(topo);
    auto brute = placer::place(placer::Strategy::kOptimal, chains, topo,
                               options, oracle_b);

    std::string label = "{";
    for (int n : combo) label += std::to_string(n) + ",";
    label.back() = '}';
    std::printf("%-22s %6zu %12.4f %14.4f %9.0fx\n", label.c_str(), nfs,
                heuristic.placement_seconds, brute.placement_seconds,
                brute.placement_seconds /
                    std::max(1e-9, heuristic.placement_seconds));
    if (heuristic.feasible && brute.feasible) {
      std::printf("%-22s marginal: heuristic %.2f vs optimal %.2f Gbps\n",
                  "", heuristic.marginal_gbps(), brute.marginal_gbps());
    }
  }
  std::printf(
      "\nExpected shape: the heuristic is orders of magnitude faster while "
      "matching\nthe brute-force marginal throughput (sections 5.2-5.3).\n");
  return 0;
}
