// Figure 3c reproduction: accelerating chain 3 with an OpenFlow switch
// used in place of the PISA switch (the ToR only coordinates). The paper
// compares offloading ACL (and the other OF-capable NFs) onto the
// Edgecore OpenFlow switch against stitching everything through the
// commodity server: ~7710 Mbps vs ~693 Mbps for that chain.
#include "bench/common.h"

int main() {
  using namespace lemur;
  placer::PlacerOptions options;
  options.disable_pisa_nfs = true;       // The ToR is only a coordinator.
  options.restrict_ipv4fwd_to_p4 = false;

  std::printf("Lemur reproduction — Figure 3c: OpenFlow offload of "
              "chain 3\n");
  bench::print_header("Figure 3c");
  std::printf("%-14s %12s %12s %12s %8s\n", "variant", "t_min",
              "predicted", "measured", "OF-NFs");

  for (bool with_of : {true, false}) {
    const topo::Topology topo =
        with_of ? topo::Topology::lemur_testbed_with_openflow()
                : topo::Topology::lemur_testbed();
    auto chains = bench::chain_set({3}, 0.5, topo, options);
    metacompiler::CompilerOracle oracle(topo);
    auto placement = placer::place(placer::Strategy::kLemur, chains, topo,
                                   options, oracle);
    double measured = -1;
    std::size_t of_nfs = 0;
    if (placement.feasible) {
      auto artifacts = metacompiler::compile(chains, placement, topo);
      of_nfs = artifacts.of_rules.size();
      if (artifacts.ok) {
        runtime::Testbed testbed(chains, placement, artifacts, topo);
        if (testbed.ok()) measured = testbed.run(5.0).aggregate_gbps;
      }
    }
    std::printf("%-14s %12.2f %12s %12s %8zu\n",
                with_of ? "OF offload" : "server only",
                placement.aggregate_t_min_gbps,
                bench::cell(placement.aggregate_gbps, placement.feasible)
                    .c_str(),
                bench::cell(measured, measured >= 0).c_str(), of_nfs);
  }
  std::printf(
      "\nExpected shape (paper: 7710 vs 693 Mbps): offloading the "
      "OF-capable NFs\nfrees server cores for Dedup replication, lifting "
      "the chain by roughly an\norder of magnitude over the all-server "
      "deployment.\n");
  return 0;
}
