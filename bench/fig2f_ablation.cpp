// Figure 2f reproduction: importance of Lemur's components. Removes NF
// profiling (uniform costs) and core allocation (one core per subgroup)
// in turn, on the 4-chain set.
#include "bench/common.h"

int main() {
  using namespace lemur;
  const topo::Topology topo = topo::Topology::lemur_testbed();
  placer::PlacerOptions options;
  const std::vector<placer::Strategy> variants = {
      placer::Strategy::kLemur, placer::Strategy::kNoProfiling,
      placer::Strategy::kNoCoreAllocation};

  std::printf("Lemur reproduction — Figure 2f: component ablations, "
              "chains {1,2,3,4}\n");
  bench::print_header("Figure 2f");
  std::printf("%-6s %-8s", "delta", "t_min");
  for (auto v : variants) std::printf(" %14s", placer::to_string(v));
  std::printf("\n");

  for (double delta = 0.5; delta <= 4.01; delta += 0.5) {
    auto chains = bench::chain_set({1, 2, 3, 4}, delta, topo, options);
    std::printf("%-6.1f", delta);
    bool printed_tmin = false;
    for (auto variant : variants) {
      auto row = bench::run_strategy(variant, chains, topo, options,
                                     /*execute=*/false);
      if (!printed_tmin) {
        std::printf(" %-8.2f", row.t_min_gbps);
        printed_tmin = true;
      }
      std::printf(" %14s",
                  bench::cell(row.predicted_gbps, row.feasible).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: No Profiling loses marginal throughput and goes "
      "infeasible\nearlier (cores wasted on cheap NFs); No Core Allocation "
      "is only feasible at\nthe lowest delta (section 5.3).\n");
  return 0;
}
